"""End-to-end tests of the mirroring VFS over a BlobSeer deployment."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.errors import MirrorStateError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.core import MirrorVFS, mount
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def setup_cloud(n_nodes=4, seed=3, image=None):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(n_nodes)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    data = image if image is not None else pattern(IMG)
    rec = dep.seed_blob(Payload.from_bytes(data), CHUNK)
    return fab, dep, hosts, rec, data


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestLazyMirroring:
    def test_read_matches_source(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            p = yield from h.read(100, 1000)
            return p

        assert run(fab, scenario()).to_bytes() == data[100:1100]

    def test_only_touched_chunks_fetched(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.read(0, 10)  # one chunk
            return h

        h = run(fab, scenario())
        assert h.modmgr.mirrored_bytes() == CHUNK  # full chunk prefetched
        assert fab.metrics.counters["mirror-chunks-fetched"] == 1

    def test_second_read_same_chunk_is_local(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.read(0, 10)
            remote_before = fab.metrics.counters["mirror-remote-read"]
            p = yield from h.read(CHUNK - 50, 50)  # same chunk, different region
            return remote_before, p

        remote_before, p = run(fab, scenario())
        assert fab.metrics.counters["mirror-remote-read"] == remote_before
        assert p.to_bytes() == data[CHUNK - 50 : CHUNK]

    def test_writes_stay_local(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(10, Payload.from_bytes(b"LOCAL"))
            p = yield from h.read(8, 10)
            return h, p

        h, p = run(fab, scenario())
        # read-your-writes; rest of the chunk fetched remotely around it
        expected = bytearray(data[8:18])
        expected[2:7] = b"LOCAL"
        assert p.to_bytes() == bytes(expected)
        # repository content untouched before COMMIT
        assert dep.stored_bytes() == IMG

    def test_write_gap_fill_keeps_invariant_and_content(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(100, Payload.from_bytes(b"A" * 10))
            yield from h.write(300, Payload.from_bytes(b"B" * 10))  # gap (110,300)
            p = yield from h.read(90, 250)
            return h, p

        h, p = run(fab, scenario())
        assert fab.metrics.counters["mirror-gap-fill"] == 1
        expected = bytearray(data[90:340])
        expected[10:20] = b"A" * 10
        expected[210:220] = b"B" * 10
        assert p.to_bytes() == bytes(expected[:250])
        lo, hi = h.modmgr.mirrored_interval(0)
        assert (lo, hi) == (100, 310) or (lo, hi) == (0, CHUNK)

    def test_out_of_range_io_rejected(self):
        fab, dep, hosts, rec, _ = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            with pytest.raises(MirrorStateError):
                yield from h.read(IMG - 10, 20)
            with pytest.raises(MirrorStateError):
                yield from h.write(IMG, Payload.from_bytes(b"x"))
            return True

        assert run(fab, scenario())


class TestCloneCommit:
    def test_commit_publishes_standalone_snapshot(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(CHUNK + 5, Payload.from_bytes(b"MODIFIED"))
            clone_rec = yield from h.ioctl_clone()
            commit_rec = yield from h.ioctl_commit()
            # snapshot readable as a standalone raw image from another node
            reader = dep.client(hosts[2])
            img = yield from reader.read(
                commit_rec.blob_id, commit_rec.version, 0, IMG
            )
            return clone_rec, commit_rec, img

        clone_rec, commit_rec, img = run(fab, scenario())
        assert clone_rec.blob_id != rec.blob_id
        assert commit_rec.blob_id == clone_rec.blob_id
        assert commit_rec.version == clone_rec.version + 1
        expected = bytearray(data)
        expected[CHUNK + 5 : CHUNK + 13] = b"MODIFIED"
        assert img.to_bytes() == bytes(expected)

    def test_commit_stores_only_diff(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(0, Payload.from_bytes(b"x" * 100))
            yield from h.ioctl_clone()
            yield from h.ioctl_commit()

        run(fab, scenario())
        # one dirty chunk stored beyond the base image
        assert dep.stored_bytes() == IMG + CHUNK

    def test_consecutive_commits_total_order(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.ioctl_clone()
            yield from h.write(0, Payload.from_bytes(b"v2"))
            r2 = yield from h.ioctl_commit()
            yield from h.write(CHUNK, Payload.from_bytes(b"v3"))
            r3 = yield from h.ioctl_commit()
            reader = dep.client(hosts[1])
            img2 = yield from reader.read(r2.blob_id, r2.version, 0, 2 * CHUNK)
            img3 = yield from reader.read(r3.blob_id, r3.version, 0, 2 * CHUNK)
            return r2, r3, img2, img3

        r2, r3, img2, img3 = run(fab, scenario())
        assert r3.version == r2.version + 1
        exp2 = bytearray(data[: 2 * CHUNK])
        exp2[0:2] = b"v2"
        assert img2.to_bytes() == bytes(exp2)
        exp3 = bytearray(exp2)
        exp3[CHUNK : CHUNK + 2] = b"v3"
        assert img3.to_bytes() == bytes(exp3)

    def test_commit_without_clone_targets_source_blob(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(0, Payload.from_bytes(b"direct"))
            r = yield from h.ioctl_commit()
            return r

        r = run(fab, scenario())
        assert r.blob_id == rec.blob_id
        assert r.version == rec.version + 1

    def test_empty_commit_is_noop(self):
        fab, dep, hosts, rec, _ = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.ioctl_clone()
            r1 = yield from h.ioctl_commit()
            return r1

        r1 = run(fab, scenario())
        assert fab.metrics.counters["ioctl-commit"] == 0
        assert r1.version == 1  # clone's first snapshot, nothing new published

    def test_commit_gap_fills_partial_chunks(self):
        """A dirty chunk written only partially must be completed before COMMIT."""
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version)
            yield from h.write(10, Payload.from_bytes(b"tiny"))
            yield from h.ioctl_clone()
            r = yield from h.ioctl_commit()
            reader = dep.client(hosts[1])
            img = yield from reader.read(r.blob_id, r.version, 0, CHUNK)
            return img

        img = run(fab, scenario())
        assert fab.metrics.counters["commit-gap-fill"] == 1
        expected = bytearray(data[:CHUNK])
        expected[10:14] = b"tiny"
        assert img.to_bytes() == bytes(expected)

    def test_snapshots_of_many_instances_share_content(self):
        """Multisnapshotting: N clones with small diffs stay near IMG + N*diff."""
        fab, dep, hosts, rec, data = setup_cloud()

        def one_vm(node, i):
            h = yield from mount(node, dep, rec.blob_id, rec.version, path=f"/m{i}")
            yield from h.write(i * CHUNK, Payload.from_bytes(pattern(64, seed=i)))
            yield from h.ioctl_clone()
            yield from h.ioctl_commit()

        procs = [fab.env.process(one_vm(hosts[i], i)) for i in range(4)]
        fab.run(fab.env.all_of(procs))
        assert dep.stored_bytes() == IMG + 4 * CHUNK


class TestPersistenceAcrossOpen:
    def test_close_reopen_restores_state(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
            yield from h.write(5, Payload.from_bytes(b"persist"))
            yield from h.read(2 * CHUNK, 100)
            yield from h.close()
            with pytest.raises(MirrorStateError):
                yield from h.read(0, 1)
            h2 = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
            remote_before = fab.metrics.counters["mirror-remote-read"]
            p = yield from h2.read(5, 7)  # served locally: state restored
            return remote_before, p, h2

        remote_before, p, h2 = run(fab, scenario())
        assert p.to_bytes() == b"persist"
        assert fab.metrics.counters["mirror-remote-read"] == remote_before
        assert h2.modmgr.dirty_chunks() == [0]

    def test_reopen_wrong_snapshot_rejected(self):
        fab, dep, hosts, rec, data = setup_cloud()
        rec2 = dep.seed_blob(Payload.from_bytes(pattern(IMG, 9)), CHUNK)

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
            yield from h.close()
            vfs = MirrorVFS(hosts[0], dep.client(hosts[0]))
            with pytest.raises(MirrorStateError):
                yield from vfs.open(rec2.blob_id, rec2.version, path="/m")
            return True

        assert run(fab, scenario())

    def test_commit_target_survives_reopen(self):
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
            yield from h.ioctl_clone()
            yield from h.write(0, Payload.from_bytes(b"a"))
            r1 = yield from h.ioctl_commit()
            yield from h.close()
            h2 = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
            yield from h2.write(CHUNK, Payload.from_bytes(b"b"))
            r2 = yield from h2.ioctl_commit()
            return r1, r2

        r1, r2 = run(fab, scenario())
        assert r2.blob_id == r1.blob_id
        assert r2.version == r1.version + 1


class TestHypervisorIndependence:
    def test_portability_snapshot_readable_on_fresh_node(self):
        """Suspend on one node, resume on another (paper §5.5 second setting)."""
        fab, dep, hosts, rec, data = setup_cloud()

        def scenario():
            h = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/a")
            yield from h.write(123, Payload.from_bytes(b"state-before-suspend"))
            yield from h.ioctl_clone()
            snap = yield from h.ioctl_commit()
            yield from h.close()
            # resume on a different node, no local content available
            h2 = yield from mount(hosts[3], dep, snap.blob_id, snap.version, path="/b")
            p = yield from h2.read(123, 20)
            return p

        assert run(fab, scenario()).to_bytes() == b"state-before-suspend"
