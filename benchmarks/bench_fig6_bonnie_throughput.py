"""Figure 6 — Bonnie++ sustained throughput (paper §5.4).

A single VM writes, reads back, and overwrites an 800 MB working set in
8 KiB blocks inside its image, comparing the mirror (FUSE + mmap write-back)
with a locally available raw image (hypervisor default path). Since the data
is written before being read, the mirror never goes remote.
"""

import pytest

from repro.analysis import check_shape, render_bars
from repro.cloud import build_cloud, seed_image
from repro.common.units import MiB
from repro.vmsim import BonnieBenchmark, make_image
from repro.vmsim.backends import LocalRawBackend, MirrorBackend

from common import active_profile, build_point_cloud, emit

PROFILE = active_profile()


def _run_bonnie(kind: str):
    cloud, image = build_point_cloud(PROFILE, seed=3)
    idents = seed_image(cloud, image)
    node = cloud.compute[0]
    fuse = cloud.calib.fuse
    if kind == "local":
        f = node.create_file("/local/image.raw", image.size)
        f.write(0, image.payload)
        backend = LocalRawBackend(node, "/local/image.raw", fuse)
        data_op, meta_op = fuse.local_data_op_overhead, fuse.local_per_op_overhead
    else:
        rec = idents["blobseer"]
        backend = MirrorBackend(node, cloud.blobseer, rec.blob_id, rec.version, fuse)
        data_op, meta_op = fuse.data_op_overhead, fuse.per_op_overhead
    base = image.size // 2  # working set in the free half of the image
    bench = BonnieBenchmark(
        backend, data_op, meta_op,
        working_set=PROFILE.bonnie_working_set, base_offset=base,
    )
    out = {}

    def master():
        yield from backend.open()
        out["results"] = yield from bench.run()

    cloud.run(cloud.env.process(master(), name=f"bonnie-{kind}"))
    traffic = cloud.metrics.traffic.get("payload", 0)
    return out["results"], traffic


@pytest.mark.parametrize("kind", ["local", "mirror"])
def test_fig6_run(benchmark, sweep_cache, kind):
    results, traffic = benchmark.pedantic(lambda: _run_bonnie(kind), rounds=1, iterations=1)
    sweep_cache[("bonnie", kind)] = results
    if kind == "mirror":
        # §5.4: written-then-read data never triggers remote reads
        assert traffic < 2 * MiB


def test_fig6_report(benchmark, sweep_cache):
    local = sweep_cache[("bonnie", "local")]
    ours = sweep_cache[("bonnie", "mirror")]
    table = benchmark.pedantic(
        lambda: render_bars(
            "fig6: Bonnie++ sustained throughput (KB/s)",
            ["BlockW", "BlockR", "BlockO"],
            {
                "local": [local.block_write_kbps, local.block_read_kbps, local.block_overwrite_kbps],
                "our-approach": [ours.block_write_kbps, ours.block_read_kbps, ours.block_overwrite_kbps],
            },
        ),
        rounds=1,
        iterations=1,
    )
    w_ratio = ours.block_write_kbps / local.block_write_kbps
    o_ratio = ours.block_overwrite_kbps / local.block_overwrite_kbps
    r_ratio = ours.block_read_kbps / local.block_read_kbps
    checks = [
        check_shape(f"BlockW ~2x higher for ours (mmap write-back; got {w_ratio:.2f}x)", 1.5 < w_ratio < 2.6),
        check_shape(f"BlockO ~2x higher for ours (got {o_ratio:.2f}x)", 1.3 < o_ratio < 2.6),
        check_shape(f"BlockR equal for both (got {r_ratio:.2f}x)", 0.85 < r_ratio < 1.15),
    ]
    emit("fig6", table + "\n" + "\n".join(checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
