"""Exporters: Perfetto trace-event JSON and the JSONL span log."""

import json

from repro.obs.export import (
    iter_complete_events,
    read_spans_jsonl,
    to_span_dicts,
    to_trace_events,
    write_spans_jsonl,
    write_trace_json,
)
from repro.obs.span import Tracer


class StubEnv:
    """Just enough Environment for a Tracer: a clock and an active process."""

    def __init__(self):
        self.now = 0.0
        self._active_process = None


def sample_tracer():
    env = StubEnv()
    tr = Tracer(env, trace_id="trace-test")
    root = tr.start("boot:vm000", "vm", host="node00")
    env.now = 0.5
    inner = tr.start("rpc:read", "rpc")
    inner.event("retry", attempt=1)
    env.now = 1.5
    inner.set_error("TimeoutError: slow")
    inner.finish()
    env.now = 2.0
    root.finish()
    return env, tr


class TestTraceEvents:
    def test_document_shape(self):
        _, tr = sample_tracer()
        doc = to_trace_events(tr)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["trace_id"] == "trace-test"
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_complete_events_use_microseconds(self):
        _, tr = sample_tracer()
        doc = to_trace_events(tr)
        by_name = {ev["name"]: ev for ev in iter_complete_events(doc)}
        boot = by_name["boot:vm000"]
        assert boot["ts"] == 0.0
        assert boot["dur"] == 2.0 * 1e6
        rpc = by_name["rpc:read"]
        assert rpc["ts"] == 0.5 * 1e6
        assert rpc["dur"] == 1.0 * 1e6

    def test_args_carry_links_attrs_and_error(self):
        _, tr = sample_tracer()
        doc = to_trace_events(tr)
        by_name = {ev["name"]: ev for ev in iter_complete_events(doc)}
        boot, rpc = by_name["boot:vm000"], by_name["rpc:read"]
        assert boot["args"]["host"] == "node00"
        assert rpc["args"]["parent_id"] == boot["args"]["span_id"]
        assert rpc["args"]["error"] == "TimeoutError: slow"

    def test_metadata_names_threads(self):
        _, tr = sample_tracer()
        doc = to_trace_events(tr)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        names = {ev["name"] for ev in meta}
        assert {"process_name", "thread_name", "thread_sort_index"} <= names

    def test_open_span_clipped_to_end_time(self):
        env = StubEnv()
        tr = Tracer(env)
        tr.start("open", "rpc")
        env.now = 3.0
        doc = to_trace_events(tr)  # end_time defaults to env.now
        (ev,) = iter_complete_events(doc)
        assert ev["dur"] == 3.0 * 1e6

    def test_write_trace_json_is_loadable(self, tmp_path):
        _, tr = sample_tracer()
        path = write_trace_json(tmp_path / "out.trace.json", tr)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) >= 3


class TestSpansJsonl:
    def test_roundtrip(self, tmp_path):
        _, tr = sample_tracer()
        path = write_spans_jsonl(tmp_path / "spans.jsonl", tr)
        records = read_spans_jsonl(path)
        assert [r["name"] for r in records] == ["boot:vm000", "rpc:read"]
        rpc = records[1]
        assert rpc["parent_id"] == records[0]["span_id"]
        assert rpc["t0"] == 0.5 and rpc["t1"] == 1.5
        assert rpc["error"] == "TimeoutError: slow"
        assert rpc["events"] == [{"t": 0.5, "name": "retry", "attrs": {"attempt": 1}}]

    def test_dicts_are_json_serializable(self):
        _, tr = sample_tracer()
        json.dumps(to_span_dicts(tr))
