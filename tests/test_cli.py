"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_deploy_defaults(self):
        args = build_parser().parse_args(["deploy"])
        assert args.approach == "mirror"
        assert args.instances == 16

    def test_invalid_approach_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy", "--approach", "bittorrent"])

    def test_snapshot_rejects_prepropagation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot", "--approach", "prepropagation"])


class TestCommands:
    def test_deploy_runs_and_prints_metrics(self, capsys):
        rc = main(
            ["deploy", "--instances", "3", "--image-mib", "64",
             "--touched-mib", "6", "--pool", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg boot" in out
        assert "network traffic" in out

    @pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs"])
    def test_snapshot_runs(self, capsys, approach):
        rc = main(
            ["snapshot", "--instances", "2", "--image-mib", "64",
             "--touched-mib", "4", "--diff-mib", "2", "--pool", "6",
             "--approach", approach]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bytes persisted" in out

    def test_bonnie_runs(self, capsys):
        rc = main(["bonnie", "--image-mib", "64", "--working-mib", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BlockW" in out and "RndSeek" in out

    def test_info_prints_calibration(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nic_bandwidth" in out
        assert "chunk_size" in out


class TestTrace:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.figure == "fig4"
        assert args.approach == "mirror"
        assert args.instances == 16
        assert args.out is None

    def test_fig5_rejects_prepropagation(self, capsys):
        rc = main(["trace", "--figure", "fig5", "--approach", "prepropagation"])
        assert rc == 2
        assert "prepropagation" in capsys.readouterr().err

    def test_trace_writes_perfetto_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "fig4.trace.json"
        rc = main(
            ["trace", "-n", "2", "--image-mib", "64", "--touched-mib", "6",
             "--pool", "6", "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path of boot:" in text
        assert "span coverage:" in text
        assert str(out) in text
        doc = json.loads(out.read_text())
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])

    def test_fig5_trace_breaks_down_snapshots(self, capsys, tmp_path):
        out = tmp_path / "fig5.trace.json"
        rc = main(
            ["trace", "--figure", "fig5", "-n", "2", "--image-mib", "64",
             "--touched-mib", "4", "--diff-mib", "2", "--pool", "6",
             "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path of snapshot:" in text
        assert out.exists()

    def test_deploy_accepts_trace_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            ["deploy", "--instances", "2", "--image-mib", "64",
             "--touched-mib", "6", "--pool", "6", "--trace"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert (tmp_path / "deploy-mirror-n2.trace.json").exists()


class TestSweep:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.figure == "fig4"
        assert args.profile == "quick"
        assert args.jobs is None
        assert args.approach == []
        assert not args.no_cache and not args.refresh

    def test_counts_parsed_as_ints(self):
        args = build_parser().parse_args(["sweep", "--counts", "1,2,8"])
        assert args.counts == [1, 2, 8]

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--figure", "fig9"])

    def test_counts_beyond_pool_fail(self, capsys):
        rc = main(["sweep", "--figure", "fig4", "--profile", "quick",
                   "--counts", "100000", "--no-cache"])
        assert rc == 2
        assert "exceed" in capsys.readouterr().err

    def test_quick_sweep_runs(self, capsys):
        rc = main(["sweep", "--figure", "fig4", "--profile", "quick",
                   "--approach", "mirror", "--counts", "1", "--jobs", "1",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg_boot_time" in out
        assert "1 points (1 simulated, 0 from cache)" in out
        assert "jobs=1" in out and "profile=quick" in out

    def test_sweep_uses_cache_dir(self, capsys, tmp_path):
        argv = ["sweep", "--figure", "fig4", "--profile", "quick",
                "--approach", "mirror", "--counts", "1", "--jobs", "1",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "(1 simulated, 0 from cache)" in first
        assert str(tmp_path) in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(0 simulated, 1 from cache)" in second


class TestChurn:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["churn"])
        assert args.policy == "least-loaded"
        assert args.arrivals == "poisson"
        assert args.profile == "churn-smoke"
        assert args.smoke is False
        assert args.restore_fraction == 0.0
        assert args.retain_snapshots is False

    def test_churn_restore_flags_print_restore_slos(self, capsys):
        rc = main(["churn", "--deploys", "10", "--rate", "3", "--seed", "3",
                   "--restore-fraction", "0.5", "--retain-snapshots"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "restores:" in out
        assert "from retired chains" in out

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--policy", "tetris"])

    def test_churn_prints_slos(self, capsys):
        rc = main(["churn", "--deploys", "10", "--rate", "3", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "boot latency:" in out
        assert "rejection rate:" in out
        assert "GC sweeps" in out

    def test_churn_smoke_passes(self, capsys):
        rc = main(["churn", "--deploys", "10", "--rate", "3", "--p2p",
                   "--gc-interval", "20", "--smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoke: deterministic=True" in out
        assert "progressed=True" in out
        assert "gc-reclaimed=True" in out


class TestP2P:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["p2p"])
        assert args.directory == "announce"
        assert args.fanout == 2
        assert args.smoke is False

    def test_invalid_directory_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["p2p", "--directory", "bittorrent"])

    def test_p2p_prints_comparison(self, capsys):
        rc = main(
            ["p2p", "--instances", "3", "--pool", "6", "--image-mib", "64",
             "--touched-mib", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "peer hit ratio" in out
        assert "provider bytes" in out

    def test_p2p_smoke_passes(self, capsys):
        rc = main(
            ["p2p", "--instances", "3", "--pool", "6", "--image-mib", "64",
             "--touched-mib", "6", "--smoke"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoke: off-path identical=True" in out
        assert "peer-hits=True" in out
        assert "provider-bytes-reduced=True" in out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_help_enumerates_subcommands(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        for sub in ("deploy", "snapshot", "sweep", "churn", "lineage"):
            assert sub in out


class TestLineage:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["lineage"])
        assert args.depth == 0
        assert args.profile == "lineage"
        assert args.policy == "flatten"
        assert args.depth_bound == 4
        assert not args.compact

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lineage", "--policy", "squash"])

    def test_lineage_prints_restore_and_dedup(self, capsys):
        rc = main(["lineage", "--profile", "lineage-smoke", "--depth", "3",
                   "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "restore latency" in out
        assert "dedup accounting" in out
        assert "exclusive+shared==live: ok" in out

    def test_lineage_smoke_passes(self, capsys):
        rc = main(["lineage", "--smoke", "--profile", "lineage-smoke",
                   "--depth", "4", "--compact", "--depth-bound", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "deterministic=True" in out
        assert "conserved=True" in out
