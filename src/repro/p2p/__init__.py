"""Cooperative peer-to-peer chunk exchange for multideployment.

Off by default: a cloud built with ``p2p=False`` (the default) never imports
behavior from this package into the fetch path and stays byte-identical to a
build without it. See DESIGN.md §10.
"""

from .cache import PeerChunkCache
from .directory import (
    DIRECTORY_SERVICE,
    AnnounceDirectory,
    PeerDirectoryService,
    RendezvousDirectory,
)
from .exchange import (
    PEER_SERVICE,
    P2PConfig,
    PeerAgent,
    PeerExchangeService,
    PeerNetwork,
)

__all__ = [
    "PeerChunkCache",
    "AnnounceDirectory",
    "RendezvousDirectory",
    "PeerDirectoryService",
    "DIRECTORY_SERVICE",
    "PEER_SERVICE",
    "P2PConfig",
    "PeerAgent",
    "PeerExchangeService",
    "PeerNetwork",
]
