"""Timeline determinism of the full stack (regression guard for the fast path).

The engine promises bit-identical timelines for identical seeds; every
optimization in the simulator fast path (sentinel wakeups, incremental fair
share, shared process bootstraps, merged timeouts) argues it preserves the
exact event timeline. This test pins that promise at the system level: a
full deploy + snapshot cycle run twice from the same seed must agree on the
final clock, the processed-event count, and every traffic counter.
"""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy, snapshot_all
from repro.common.units import KiB, MiB
from repro.vmsim import make_image

CALIB = Calibration(
    image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=8 * MiB)
)
N_NODES = 8
SEED = 7


def _run_cycle(approach="mirror", with_snapshot=False):
    cloud = build_cloud(N_NODES, seed=SEED, calib=CALIB)
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    result = deploy(cloud, image, N_NODES, approach)
    if with_snapshot:
        snapshot_all(cloud, result.vms, approach)
    return {
        "now": cloud.env.now,
        "events": cloud.env.event_count,
        "traffic": dict(cloud.metrics.traffic),
        "boot_times": tuple(result.boot_times),
        "completion": result.completion_time,
    }


@pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
def test_deploy_timeline_is_reproducible(approach):
    a = _run_cycle(approach)
    b = _run_cycle(approach)
    # exact equality on purpose: same seed must give the same timeline
    # bit for bit, not merely approximately
    assert a["now"] == b["now"]
    assert a["events"] == b["events"]
    assert a["traffic"] == b["traffic"]
    assert a["boot_times"] == b["boot_times"]
    assert a["completion"] == b["completion"]


def test_deploy_snapshot_timeline_is_reproducible():
    a = _run_cycle(with_snapshot=True)
    b = _run_cycle(with_snapshot=True)
    assert a == b


def test_distinct_seeds_diverge():
    """Sanity check that the equality above is not vacuous."""
    a = _run_cycle()
    cloud = build_cloud(N_NODES, seed=SEED + 1, calib=CALIB)
    image = make_image(CALIB.image.size, CALIB.image.boot_touched_bytes, n_regions=16)
    deploy(cloud, image, N_NODES, "mirror")
    assert cloud.env.now != a["now"] or cloud.env.event_count != a["events"]
