"""Version pins: refcounted leases and deferred deletes at the registry."""

import pytest

from repro.common.errors import LineageError, UnknownVersionError

from helpers import make, build_chain


def chainreg():
    fab, dep, hosts, rec = make()
    records = build_chain(fab, dep, hosts[0], rec, depth=3)
    return dep.registry, records


class TestPins:
    def test_pin_refcounts(self):
        reg, records = chainreg()
        mid = records[1]
        reg.pin_version(mid.blob_id, mid.version)
        reg.pin_version(mid.blob_id, mid.version)
        assert reg.pin_count(mid.blob_id, mid.version) == 2
        reg.unpin_version(mid.blob_id, mid.version)
        assert reg.pin_count(mid.blob_id, mid.version) == 1
        reg.unpin_version(mid.blob_id, mid.version)
        assert reg.pin_count(mid.blob_id, mid.version) == 0

    def test_unpin_without_pin_raises(self):
        reg, records = chainreg()
        with pytest.raises(LineageError):
            reg.unpin_version(records[0].blob_id, records[0].version)

    def test_pin_never_published_raises(self):
        reg, records = chainreg()
        with pytest.raises(UnknownVersionError):
            reg.pin_version(999, 1)

    def test_pin_survives_retirement(self):
        """A retired version can still be pinned (restore from retired)."""
        reg, records = chainreg()
        mid = records[1]
        reg.delete_version(mid.blob_id, mid.version)
        reg.pin_version(mid.blob_id, mid.version)  # does not raise
        reg.unpin_version(mid.blob_id, mid.version)


class TestDeferredDeletes:
    def test_delete_version_defers_until_unpin(self):
        """Satellite: churn retention cannot retire a pinned version."""
        reg, records = chainreg()
        mid = records[1]
        reg.pin_version(mid.blob_id, mid.version)
        reg.delete_version(mid.blob_id, mid.version)
        # still published (GC-rooted) while the restore lease is held
        assert reg.is_published(mid.blob_id, mid.version)
        reg.unpin_version(mid.blob_id, mid.version)
        assert not reg.is_published(mid.blob_id, mid.version)
        assert reg.lineage_entry(mid.blob_id, mid.version).retired

    def test_deferred_delete_waits_for_last_pin(self):
        reg, records = chainreg()
        mid = records[1]
        reg.pin_version(mid.blob_id, mid.version)
        reg.pin_version(mid.blob_id, mid.version)
        reg.delete_version(mid.blob_id, mid.version)
        reg.unpin_version(mid.blob_id, mid.version)
        assert reg.is_published(mid.blob_id, mid.version)
        reg.unpin_version(mid.blob_id, mid.version)
        assert not reg.is_published(mid.blob_id, mid.version)

    def test_delete_blob_defers_until_unpin(self):
        """Teardown of a blob with an in-flight restore waits it out."""
        reg, records = chainreg()
        mid = records[1]
        reg.pin_version(mid.blob_id, mid.version)
        reg.delete_blob(mid.blob_id)
        assert reg.is_published(mid.blob_id, mid.version)
        reg.unpin_version(mid.blob_id, mid.version)
        assert reg.blob_ids() == [records[0].blob_id - 1]  # only the seed

    def test_unpinned_delete_is_immediate(self):
        reg, records = chainreg()
        mid = records[1]
        reg.delete_version(mid.blob_id, mid.version)
        assert not reg.is_published(mid.blob_id, mid.version)


class TestSkipPointers:
    def test_set_and_clear_skip(self):
        reg, records = chainreg()
        head = records[-1]
        genesis = (head.blob_id, 0)
        reg.set_skip(head.blob_id, head.version, genesis)
        assert reg.lineage_entry(head.blob_id, head.version).next_hop() == genesis
        reg.set_skip(head.blob_id, head.version, None)
        entry = reg.lineage_entry(head.blob_id, head.version)
        assert entry.next_hop() == entry.parent

    def test_skip_self_loop_rejected(self):
        reg, records = chainreg()
        head = records[-1]
        with pytest.raises(LineageError):
            reg.set_skip(head.blob_id, head.version, (head.blob_id, head.version))

    def test_skip_to_unpublished_target_rejected(self):
        reg, records = chainreg()
        head = records[-1]
        with pytest.raises(UnknownVersionError):
            reg.set_skip(head.blob_id, head.version, (999, 1))
