"""Flow-level network fabric with per-NIC fair bandwidth sharing.

The paper's testbed is a commodity GigE cluster (117.5 MB/s measured TCP
throughput, ~0.1 ms latency) behind a non-blocking switch, so the only
bandwidth constraints that matter are the hosts' NICs. We therefore model the
network at *flow level*: a bulk transfer is a fluid flow whose instantaneous
rate is its fair share of its source's uplink and destination's downlink.

Two fairness disciplines are provided:

``"equal-share"`` (default)
    ``rate(f) = min(cap_up(src)/n_up(src), cap_down(dst)/n_down(dst))``.
    Incremental, O(flows on the two affected links) per flow arrival or
    departure — fast enough for hundred-node sweeps. It slightly
    *under*-estimates throughput versus true max-min fairness because the
    share a bottlenecked-elsewhere flow leaves on a link is not
    redistributed.

``"maxmin"``
    exact max-min fairness via progressive filling, recomputed globally on
    every flow arrival/departure. Heap-driven water filling, O(F log L) per
    recompute — used in tests and small topologies to bound the error of the
    fast mode.

**Completion wakeups** use a single earliest-ETA sentinel event per network
rather than one timer per flow per rebalance: every rate change pushes the
flow's new absolute completion time onto a lazily-invalidated heap (a
per-flow generation counter marks stale entries), and at most one pending
sentinel timer tracks the heap head. A rebalance therefore schedules O(1)
timers instead of O(affected flows), and flows whose fair share did not
change are not touched at all (their linear progress makes deferring the
bookkeeping exact). See DESIGN.md §"Performance model & profiling".

Small control messages (below :attr:`FlowNetwork.message_threshold`) bypass
the fluid model and pay ``latency + size/capacity + per_message_overhead``;
their bytes still land in the traffic accounting.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..common.errors import ProviderUnavailableError
from ..common.units import MB, MILLISECONDS
from ..obs.span import NULL_TRACER
from .core import Environment, Event, Timeout
from .trace import Metrics


class Nic:
    """A full-duplex network interface: independent up and down capacities.

    Flow collections are insertion-ordered dicts (used as ordered sets):
    iteration order must be deterministic across runs, or float accumulation
    and event tie-breaking would depend on object memory addresses.

    ``up_share`` / ``down_share`` cache the current equal-share level
    (``capacity / max(1, n_flows)``); :class:`FlowNetwork` maintains them on
    every flow arrival and departure so a rebalance reads shares in O(1)
    instead of recounting flows.
    """

    __slots__ = (
        "name",
        "up_capacity",
        "down_capacity",
        "up_flows",
        "down_flows",
        "up_share",
        "down_share",
    )

    def __init__(self, name: str, up_capacity: float, down_capacity: float | None = None):
        self.name = name
        self.up_capacity = float(up_capacity)
        self.down_capacity = float(down_capacity if down_capacity is not None else up_capacity)
        self.up_flows: Dict[Flow, None] = {}
        self.down_flows: Dict[Flow, None] = {}
        self.up_share = self.up_capacity
        self.down_share = self.down_capacity

    def __repr__(self) -> str:
        return f"Nic({self.name}, up={self.up_capacity / MB:.1f}MB/s)"


class Flow:
    """A bulk transfer in flight. Internal to :class:`FlowNetwork`.

    ``wake_seq`` is the flow's generation counter: it is bumped on every rate
    change (and on completion), which lazily invalidates any completion-heap
    entries pushed under earlier generations. ``ctime`` is the absolute
    simulated time at which the flow completes under its current rate.
    """

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "t_last",
        "ctime",
        "done",
        "wake_seq",
        "kind",
        "span",
    )

    def __init__(self, src: Nic, dst: Nic, size: float, done: Event, kind: str):
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.t_last = 0.0
        self.ctime = 0.0
        self.done = done
        self.wake_seq = 0
        self.kind = kind
        self.span = None  # observability: set by transfer() when tracing


class FlowNetwork:
    """The cluster fabric: NIC registry, flows, messages, traffic accounting."""

    def __init__(
        self,
        env: Environment,
        metrics: Optional[Metrics] = None,
        latency: float = 0.1 * MILLISECONDS,
        fairness: str = "equal-share",
        message_threshold: int = 4096,
        per_message_overhead: float = 0.02 * MILLISECONDS,
        message_header_bytes: int = 66,
    ):
        if fairness not in ("equal-share", "maxmin"):
            raise ValueError(f"unknown fairness discipline {fairness!r}")
        self.env = env
        self.metrics = metrics if metrics is not None else Metrics()
        self.latency = latency
        self.fairness = fairness
        self.message_threshold = message_threshold
        self.per_message_overhead = per_message_overhead
        self.message_header_bytes = message_header_bytes
        #: observability: flow begin/end spans; inert unless a tracer is
        #: installed via :func:`repro.obs.install_tracer`
        self.tracer = NULL_TRACER
        self._nics: Dict[str, Nic] = {}
        self._flows: Dict[Flow, None] = {}
        #: min-heap of (completion time, push tie-breaker, flow generation,
        #: flow); entries whose generation no longer matches the flow's
        #: ``wake_seq`` are stale and dropped lazily.
        self._completions: List[Tuple[float, int, int, Flow]] = []
        self._push_seq = 0
        #: generation of the currently armed sentinel timer (stale timers
        #: no-op on fire) and the absolute time it targets (None = no timer).
        self._sentinel_gen = 0
        self._sentinel_time: float | None = None

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    def add_nic(self, name: str, up_capacity: float, down_capacity: float | None = None) -> Nic:
        if name in self._nics:
            raise ValueError(f"duplicate NIC name {name!r}")
        nic = Nic(name, up_capacity, down_capacity)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------ #
    # transfers
    # ------------------------------------------------------------------ #
    def transfer(self, src: Nic, dst: Nic, nbytes: int, kind: str = "bulk") -> Event:
        """Start a bulk transfer; the event fires when the last byte lands."""
        if src is dst:
            # Loopback: no NIC constraint; charge memory-copy-ish zero time.
            self.metrics.add_traffic(0, kind)  # loopback does not hit the wire
            done = Event(self.env)
            done.succeed()
            return done
        if nbytes <= self.message_threshold:
            # message() returns a pre-scheduled Timeout — identical to an
            # Event fired via schedule_at, minus the extra allocation.
            return self.message(src, dst, nbytes, kind=kind)
        done = Event(self.env)
        flow = Flow(src, dst, nbytes, done, kind)
        flow.t_last = self.env.now
        tracer = self.tracer
        if tracer.enabled:
            # async span: the flow ends inside the sentinel callback where no
            # process is active, so it never sits on a context stack
            flow.span = tracer.start_async(
                f"flow:{src.name}->{dst.name}", "net", nbytes=int(nbytes), kind=kind
            )
        self._flows[flow] = None
        src.up_flows[flow] = None
        src.up_share = src.up_capacity / len(src.up_flows)
        dst.down_flows[flow] = None
        dst.down_share = dst.down_capacity / len(dst.down_flows)
        if self.fairness == "equal-share":
            self._rebalance_pair(src, dst)
        else:
            self._rebalance_global()
        return done

    def message(
        self,
        src: Nic,
        dst: Nic,
        nbytes: int,
        kind: str = "message",
        done: Event | None = None,
    ) -> Event:
        """A small control message: latency + serialization, no fair sharing."""
        env = self.env
        wire_bytes = nbytes + self.message_header_bytes
        if src is dst:
            delay = self.per_message_overhead
        else:
            up = src.up_capacity
            down = dst.down_capacity
            delay = (
                self.latency
                + self.per_message_overhead
                + wire_bytes / (up if up < down else down)
            )
            self.metrics.traffic[kind] += wire_bytes
        if done is None:
            # A Timeout *is* an event pre-scheduled at now+delay: one
            # flattened constructor instead of Event + schedule_at.
            return Timeout(env, delay)
        # Caller-supplied completion event: fire it directly at delivery time.
        env.schedule_at(done, env.now + delay)
        return done

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def set_nic_capacity(
        self, nic: Nic, up_capacity: float, down_capacity: float | None = None
    ) -> None:
        """Change a NIC's capacities mid-run (fault injection: NIC degradation).

        In-flight flows crossing the NIC are rebalanced immediately; flows on
        other links are untouched (equal-share) or globally refilled (maxmin).
        """
        if up_capacity <= 0:
            raise ValueError(f"NIC capacity must be positive, got {up_capacity}")
        nic.up_capacity = float(up_capacity)
        nic.down_capacity = float(
            down_capacity if down_capacity is not None else up_capacity
        )
        nic.up_share = nic.up_capacity / max(1, len(nic.up_flows))
        nic.down_share = nic.down_capacity / max(1, len(nic.down_flows))
        if self.fairness == "equal-share":
            self._rebalance_pair(nic, nic)
        else:
            self._rebalance_global()

    def fail_nic(self, nic: Nic, cause: str = "nic failure") -> None:
        """Abort every flow crossing ``nic`` (host crash / link loss).

        Each victim's ``done`` event fails with
        :class:`~repro.common.errors.ProviderUnavailableError`, so waiting
        transfer callers see the loss exactly like an RPC failure. Bytes
        already on the wire are charged to the traffic accounting.
        """
        victims = list(nic.up_flows) + list(nic.down_flows)
        if not victims:
            return
        now = self.env.now
        touched: Dict[Nic, None] = {}  # insertion-ordered: determinism
        for flow in victims:
            self._flows.pop(flow, None)
            src, dst = flow.src, flow.dst
            src.up_flows.pop(flow, None)
            dst.down_flows.pop(flow, None)
            touched[src] = None
            touched[dst] = None
            if flow.rate > 0.0:
                rem = flow.remaining - flow.rate * (now - flow.t_last)
                flow.remaining = rem if rem > 0.0 else 0.0
                flow.t_last = now
            flow.wake_seq += 1  # invalidate completion-heap entries
            self.metrics.traffic[flow.kind] += int(flow.size - flow.remaining)
            span = flow.span
            if span is not None:
                span.set_error(f"aborted: {cause}")
                span.finish()
                flow.span = None
            flow.done.fail(ProviderUnavailableError(cause))
        for t in touched:
            t.up_share = t.up_capacity / max(1, len(t.up_flows))
            t.down_share = t.down_capacity / max(1, len(t.down_flows))
        if self.fairness == "equal-share":
            for t in touched:
                self._rebalance_pair(t, t)
        else:
            self._rebalance_global()

    # ------------------------------------------------------------------ #
    # rate maintenance
    # ------------------------------------------------------------------ #
    def _set_rate(self, flow: Flow, new_rate: float, now: float) -> None:
        """Apply a rate change: advance progress, bump generation, push ETA.

        Callers skip flows whose rate is unchanged — a flow drains linearly,
        so leaving ``(t_last, remaining)`` untouched until the rate actually
        changes is exact (and keeps its completion-heap entry valid).
        """
        old = flow.rate
        if old > 0.0:
            rem = flow.remaining - old * (now - flow.t_last)
            flow.remaining = rem if rem > 0.0 else 0.0
        flow.t_last = now
        flow.rate = new_rate
        flow.wake_seq += 1
        if new_rate > 0.0:
            ctime = now + flow.remaining / new_rate
            flow.ctime = ctime
            self._push_seq += 1
            heappush(self._completions, (ctime, self._push_seq, flow.wake_seq, flow))

    def _rebalance_pair(self, src: Nic, dst: Nic) -> None:
        """Equal-share rebalance after an arrival/departure on (src, dst).

        Only the up-share of ``src`` and the down-share of ``dst`` changed,
        so only flows crossing those two link directions can see a new rate.
        """
        now = self.env.now
        for flow in src.up_flows:
            rate = flow.src.up_share
            ds = flow.dst.down_share
            if ds < rate:
                rate = ds
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        for flow in dst.down_flows:
            if flow.src is src:
                continue  # already handled in the uplink pass
            rate = flow.src.up_share
            ds = flow.dst.down_share
            if ds < rate:
                rate = ds
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        self._arm_sentinel()

    def _rebalance_global(self) -> None:
        """Max-min rebalance: recompute every active flow's rate."""
        now = self.env.now
        for flow, rate in self._progressive_filling():
            if rate != flow.rate:
                self._set_rate(flow, rate, now)
        self._arm_sentinel()

    def _progressive_filling(self) -> List[Tuple[Flow, float]]:
        """Exact max-min fairness over all active flows (water filling).

        Heap-driven: each link direction carries (residual capacity, unfixed
        flow count); the globally tightest link fixes all its unfixed flows
        at its share level, then the other endpoints' shares are re-pushed.
        Lazy invalidation via per-link version counters. O(F log L) instead
        of repeated O(links x flows) scans.
        """
        flows = self._flows
        if not flows:
            return []
        # Link record: [residual, count, unfixed-flows dict, version, index].
        links: Dict[Tuple[str, Nic], list] = {}
        link_list: List[list] = []
        flow_links: Dict[Flow, Tuple[list, list]] = {}
        for flow in flows:
            key_u = ("u", flow.src)
            lu = links.get(key_u)
            if lu is None:
                lu = [flow.src.up_capacity, 0, {}, 0, len(link_list)]
                links[key_u] = lu
                link_list.append(lu)
            key_d = ("d", flow.dst)
            ld = links.get(key_d)
            if ld is None:
                ld = [flow.dst.down_capacity, 0, {}, 0, len(link_list)]
                links[key_d] = ld
                link_list.append(ld)
            lu[1] += 1
            lu[2][flow] = None
            ld[1] += 1
            ld[2][flow] = None
            flow_links[flow] = (lu, ld)
        heap: List[Tuple[float, int, int]] = [
            (link[0] / link[1], link[4], link[3]) for link in link_list
        ]
        heapify(heap)
        rates: List[Tuple[Flow, float]] = []
        n_unfixed = len(flows)
        while n_unfixed and heap:
            share, idx, ver = heappop(heap)
            link = link_list[idx]
            if ver != link[3] or link[1] == 0:
                continue  # stale entry
            level = share
            touched: Dict[int, list] = {}
            for flow in list(link[2]):
                rates.append((flow, level))
                n_unfixed -= 1
                lu, ld = flow_links[flow]
                for other in (lu, ld):
                    del other[2][flow]
                    other[1] -= 1
                    other[0] -= level
                    if other is not link:
                        touched[other[4]] = other
            link[3] += 1  # saturated; invalidate pending entries
            for other in touched.values():
                other[3] += 1
                if other[1] > 0:
                    heappush(heap, (other[0] / other[1], other[4], other[3]))
        return rates

    # ------------------------------------------------------------------ #
    # completion sentinel
    # ------------------------------------------------------------------ #
    def _arm_sentinel(self) -> None:
        """Ensure one timer is pending at the earliest valid completion time.

        Lazy cancellation: if the armed timer targets a time at or before the
        heap head it is left alone (a too-early fire simply re-arms); if the
        head moved earlier, a fresh timer is armed and the generation bump
        makes the old one a no-op.
        """
        heap = self._completions
        flows = self._flows
        while heap:
            head = heap[0]
            if head[2] != head[3].wake_seq or head[3] not in flows:
                heappop(heap)
                continue
            break
        if not heap:
            return
        t = heap[0][0]
        if self._sentinel_time is not None and self._sentinel_time <= t:
            return
        self._sentinel_gen += 1
        self._sentinel_time = t
        env = self.env
        ev = Event(env)
        ev.callbacks.append(self._on_sentinel)
        env.schedule_at(ev, t, value=self._sentinel_gen)

    def _on_sentinel(self, ev: Event) -> None:
        if ev._value != self._sentinel_gen:
            return  # superseded by an earlier-armed sentinel
        self._sentinel_time = None
        heap = self._completions
        flows = self._flows
        while heap:
            head = heap[0]
            if head[2] != head[3].wake_seq or head[3] not in flows:
                heappop(heap)
                continue
            break
        if not heap:
            return
        if heap[0][0] <= self.env.now:
            # Complete exactly one flow; the rebalance it triggers re-arms
            # the sentinel (a tied completion fires again at the same time),
            # which keeps completion ordering identical to per-flow timers.
            flow = heappop(heap)[3]
            self._complete(flow)
        else:
            self._arm_sentinel()

    def _complete(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        src, dst = flow.src, flow.dst
        src.up_flows.pop(flow, None)
        src.up_share = src.up_capacity / max(1, len(src.up_flows))
        dst.down_flows.pop(flow, None)
        dst.down_share = dst.down_capacity / max(1, len(dst.down_flows))
        flow.wake_seq += 1  # invalidate any remaining heap entries
        self.metrics.traffic[flow.kind] += int(flow.size)
        span = flow.span
        if span is not None:
            elapsed = self.env.now - span.t0
            if elapsed > 0.0:
                span.set(achieved_bw=flow.size / elapsed)
            span.finish()
            flow.span = None
        if self.fairness == "equal-share":
            self._rebalance_pair(src, dst)
        else:
            self._rebalance_global()
        # Last byte still pays propagation latency; deliver `done` directly.
        env = self.env
        env.schedule_at(flow.done, env.now + self.latency)
