"""Trace generation: determinism, arrival shapes, lifecycle ordering."""

import numpy as np
import pytest

from repro.churn import (
    ChurnSpec,
    DeployRequest,
    SnapshotRequest,
    TeardownRequest,
    generate_trace,
    trace_crc,
)


def rng(seed=1):
    return np.random.default_rng(seed)


class TestSpecValidation:
    def test_unknown_arrival_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ChurnSpec(arrivals="lunar").validate()

    def test_trace_kind_needs_times(self):
        with pytest.raises(ValueError, match="trace_times"):
            ChurnSpec(arrivals="trace").validate()

    @pytest.mark.parametrize("kw", [
        {"n_deploys": 0}, {"rate": 0.0}, {"n_tenants": 0},
        {"slots_per_node": 0}, {"max_queue": -1},
    ])
    def test_positive_counts_required(self, kw):
        with pytest.raises(ValueError):
            ChurnSpec(**kw).validate()

    def test_unknown_policy_rejected_by_scheduler(self):
        from repro.churn import Scheduler
        with pytest.raises(ValueError, match="unknown placement policy"):
            Scheduler(4, policy="tetris")


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_same_seed_identical_trace(self, kind):
        spec = ChurnSpec(n_deploys=50, arrivals=kind)
        a = generate_trace(spec, rng(7))
        b = generate_trace(spec, rng(7))
        assert a == b
        assert trace_crc(a) == trace_crc(b)

    def test_different_seeds_differ(self):
        spec = ChurnSpec(n_deploys=50)
        assert trace_crc(generate_trace(spec, rng(1))) != trace_crc(
            generate_trace(spec, rng(2))
        )


class TestShapes:
    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_deploy_count_and_tenant_range(self, kind):
        spec = ChurnSpec(n_deploys=40, arrivals=kind, n_tenants=3)
        trace = generate_trace(spec, rng())
        deploys = [r for r in trace if isinstance(r, DeployRequest)]
        assert len(deploys) == 40
        assert all(0 <= d.tenant < 3 for d in deploys)
        assert all(b.at >= a.at for a, b in zip(trace, trace[1:]))

    def test_trace_kind_replays_explicit_times(self):
        times = (1.0, 2.5, 9.0)
        spec = ChurnSpec(n_deploys=3, arrivals="trace", trace_times=times)
        deploys = [r for r in generate_trace(spec, rng())
                   if isinstance(r, DeployRequest)]
        assert tuple(d.at for d in deploys) == times

    def test_trace_kind_with_too_few_times(self):
        spec = ChurnSpec(n_deploys=5, arrivals="trace", trace_times=(1.0,))
        with pytest.raises(ValueError, match="trace_times holds"):
            generate_trace(spec, rng())

    def test_snapshot_fraction_extremes(self):
        none = generate_trace(
            ChurnSpec(n_deploys=30, snapshot_fraction=0.0), rng())
        assert not any(isinstance(r, SnapshotRequest) for r in none)
        every = generate_trace(
            ChurnSpec(n_deploys=30, snapshot_fraction=1.0), rng())
        assert sum(isinstance(r, SnapshotRequest) for r in every) == 30


class TestLifecycleOrdering:
    def test_snapshot_between_deploy_and_teardown(self):
        spec = ChurnSpec(n_deploys=60, snapshot_fraction=0.7, min_lifetime=2.0)
        trace = generate_trace(spec, rng(3))
        deploys = {r.req_id: r for r in trace if isinstance(r, DeployRequest)}
        downs = {r.target: r for r in trace if isinstance(r, TeardownRequest)}
        assert set(downs) == set(deploys)  # every instance is torn down
        for r in trace:
            if isinstance(r, SnapshotRequest):
                assert deploys[r.target].at < r.at < downs[r.target].at
                assert r.tenant == deploys[r.target].tenant

    def test_lifetimes_respect_minimum(self):
        spec = ChurnSpec(n_deploys=40, min_lifetime=5.0, mean_lifetime=1.0)
        trace = generate_trace(spec, rng())
        deploys = {r.req_id: r for r in trace if isinstance(r, DeployRequest)}
        for r in trace:
            if isinstance(r, TeardownRequest):
                assert r.at - deploys[r.target].at >= 5.0
