"""GC vs in-flight commits, and ``bytes_reclaimed`` accounting.

A COMMIT stores chunks and metadata nodes that no published root reaches
until its final publish lands. A :func:`collect_garbage` sweep racing that
window (the normal state of affairs in a long-horizon churn run with a
periodic GC cadence) must never reclaim them — the client pins everything
it stores until the publish (or abort) via
:meth:`BlobSeerDeployment.pin_inflight`.
"""

import pytest

from repro.blobseer import BlobSeerDeployment, collect_garbage
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make(seed=7, replication=1):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(
        fab, hosts, hosts, manager, replication_factor=replication
    )
    rec = dep.seed_blob(Payload.from_bytes(pattern(IMG)), CHUNK)
    return fab, dep, hosts, rec


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestBytesReclaimed:
    """Satellite: GcReport.bytes_reclaimed reports reclamation throughput."""

    def test_counts_every_freed_chunk_byte(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])
        diff = {i: Payload.from_bytes(pattern(CHUNK, 20 + i)) for i in range(3)}

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(clone.blob_id, diff)
            return clone

        clone = run(fab, scenario())
        before = dep.stored_bytes()
        dep.registry.delete_blob(clone.blob_id)
        report = collect_garbage(dep)
        assert report.bytes_reclaimed == 3 * CHUNK
        assert report.bytes_reclaimed == before - dep.stored_bytes()
        assert report.chunks_dropped == 3

    def test_counts_physical_replica_copies(self):
        fab, dep, hosts, rec = make(replication=2)
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 9))}
            )
            return clone

        clone = run(fab, scenario())
        before = dep.stored_bytes()
        dep.registry.delete_blob(clone.blob_id)
        report = collect_garbage(dep)
        # physical bytes: one chunk stored on two providers
        assert report.bytes_reclaimed == 2 * CHUNK
        assert report.bytes_reclaimed == before - dep.stored_bytes()

    def test_second_sweep_reclaims_nothing(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {1: Payload.from_bytes(pattern(CHUNK, 3))}
            )
            return clone

        clone = run(fab, scenario())
        dep.registry.delete_blob(clone.blob_id)
        assert collect_garbage(dep).bytes_reclaimed == CHUNK
        assert collect_garbage(dep).bytes_reclaimed == 0


class TestGcCommitRace:
    def test_sweep_during_commit_never_reclaims_commit_data(self):
        """GC fired at every event boundary of a COMMIT leaves it readable."""
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])
        diff = {i: Payload.from_bytes(pattern(CHUNK, 40 + i)) for i in range(4)}
        sweeps = []

        def committer():
            clone = yield from client.clone(rec.blob_id, rec.version)
            committed = yield from client.write_chunks(clone.blob_id, diff)
            return committed

        proc = fab.env.process(committer())

        def poker():
            # hammer the collector throughout the commit's PUT->publish window
            while proc.is_alive:
                sweeps.append(collect_garbage(dep))
                yield fab.env.timeout(1e-4)

        fab.env.process(poker())
        committed = fab.run(proc)
        assert len(sweeps) > 2, "poker never raced the commit (vacuous test)"

        # every diff chunk must still be readable through the new snapshot
        reader = dep.client(hosts[2])

        def verify():
            p = yield from reader.read(
                committed.blob_id, committed.version, 0, 4 * CHUNK
            )
            return p

        got = run(fab, verify()).to_bytes()
        for i in range(4):
            assert got[i * CHUNK : (i + 1) * CHUNK] == pattern(CHUNK, 40 + i)

    def test_pins_released_after_commit(self):
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            yield from client.write_chunks(
                rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 2))}
            )

        run(fab, scenario())
        assert dep.inflight_keys == {}
        assert dep.inflight_nodes == {}

    def test_pins_shield_only_while_in_flight(self):
        """After the pins drop, an unpublished clone's diff is collectable."""
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        def scenario():
            clone = yield from client.clone(rec.blob_id, rec.version)
            yield from client.write_chunks(
                clone.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 5))}
            )
            return clone

        clone = run(fab, scenario())
        dep.registry.delete_blob(clone.blob_id)
        assert collect_garbage(dep).bytes_reclaimed == CHUNK


class TestGcDeploymentRace:
    def test_sweep_during_deployment_and_snapshot_cycle(self):
        """Full stack: periodic GC racing deploy + snapshot reclaims nothing
        reachable — every boot succeeds and every published snapshot stays
        fully readable."""
        from repro.calibration import Calibration, ImageSpec
        from repro.cloud import build_cloud, deploy, snapshot_all
        from repro.vmsim import make_image

        calib = Calibration(
            image=ImageSpec(
                size=16 * MiB, chunk_size=256 * KiB, boot_touched_bytes=4 * MiB
            )
        )
        cloud = build_cloud(4, seed=11, calib=calib, with_pvfs=False)
        image = make_image(16 * MiB, 4 * MiB, n_regions=8)
        dep = cloud.blobseer
        stop = []

        def poker():
            while not stop:
                collect_garbage(dep)
                yield cloud.env.timeout(0.05)

        cloud.env.process(poker())
        result = deploy(cloud, image, 4, "mirror")
        campaign = snapshot_all(cloud, result.vms, "mirror")
        stop.append(True)
        assert len(result.boot_times) == 4
        assert len(campaign.per_instance) == 4

        # each snapshot remains fully readable after one final sweep
        collect_garbage(dep)
        reader = dep.client(cloud.compute[0])
        for rec in dep.registry.live_records():
            def verify(rec=rec):
                p = yield from reader.read(rec.blob_id, rec.version, 0, rec.size)
                return p

            payload = cloud.fabric.run(cloud.env.process(verify()))
            assert payload.size == rec.size

    def test_race_is_real_without_pins(self):
        """Sanity: with pinning disabled the same race loses committed data
        (guards against the regression test going vacuous)."""
        fab, dep, hosts, rec = make()
        client = dep.client(hosts[0])

        # neutralize the shield
        dep.pin_inflight = lambda keys=(), nodes=(): None
        diff = {i: Payload.from_bytes(pattern(CHUNK, 60 + i)) for i in range(4)}

        def committer():
            clone = yield from client.clone(rec.blob_id, rec.version)
            committed = yield from client.write_chunks(clone.blob_id, diff)
            return committed

        proc = fab.env.process(committer())

        def poker():
            while proc.is_alive:
                collect_garbage(dep)
                yield fab.env.timeout(1e-4)

        fab.env.process(poker())
        committed = fab.run(proc)
        reader = dep.client(hosts[2])

        def verify():
            p = yield from reader.read(
                committed.blob_id, committed.version, 0, 4 * CHUNK
            )
            return p

        with pytest.raises(Exception):
            run(fab, verify())
