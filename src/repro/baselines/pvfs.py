"""A PVFS-like striped distributed file system (baseline substrate).

What the paper's comparison needs from PVFS [9]:

* files striped round-robin over I/O servers at a fixed stripe size
  (256 KB in the eval, matching BlobSeer's chunk size);
* distributed metadata servers (no centralized bottleneck);
* parallel stripe access — a range read/write fans out to the servers
  holding the touched stripes;
* **synchronous semantics and no versioning/shadowing** — a write
  overwrites in place; snapshotting a qcow2 file means physically copying
  it into PVFS.

Content lives in per-server stripe stores keyed by ``(path, stripe_idx)``;
I/O servers RAM-cache stripes after first access like any Linux server
(page cache), so hot boot data is memory-served under concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..calibration import ServiceModel
from ..common.errors import StorageError
from ..common.payload import Payload, SparseFile
from ..simkit import rpc
from ..simkit.host import Fabric, Host


@dataclass
class PvfsFileMeta:
    """Metadata-server record for one file."""

    path: str
    size: int
    stripe_size: int
    #: server names, in stripe round-robin order starting at stripe 0
    layout: Tuple[str, ...]


class PvfsIoServer:
    """One I/O server: stripe store + disk/cache behaviour."""

    def __init__(self, host: Host, model: ServiceModel, cache_stripes: bool = False):
        self.host = host
        self.model = model
        #: PVFS I/O servers perform direct stripe I/O; no server-side caching
        #: unless explicitly enabled (kept symmetric with the BlobSeer
        #: providers' default).
        self.cache_stripes = cache_stripes
        self._stripes: Dict[Tuple[str, int], SparseFile] = {}
        self._ram: set[Tuple[str, int]] = set()

    def _stripe(self, path: str, idx: int, stripe_size: int) -> SparseFile:
        key = (path, idx)
        stripe = self._stripes.get(key)
        if stripe is None:
            stripe = SparseFile(stripe_size)
            self._stripes[key] = stripe
        return stripe

    def rpc_read(self, caller: Host, path: str, requests: Sequence[Tuple[int, int, int, int]]):
        """Serve ``(stripe_idx, stripe_size, off_in_stripe, nbytes)`` requests."""
        parts: List[Payload] = []
        for idx, stripe_size, off, nbytes in requests:
            yield self.host.env.timeout(self.model.chunk_request_overhead)
            key = (path, idx)
            if key not in self._ram and key in self._stripes:
                # random read of the requested extent within the stripe
                yield from self.host.disk.read(nbytes, sequential=False)
                if self.cache_stripes:
                    self._ram.add(key)
            parts.append(self._stripe(path, idx, stripe_size).read(off, nbytes))
        self.host.fabric.metrics.count("pvfs-read", len(requests))
        return Payload.concat(parts)

    def rpc_write(self, caller: Host, path: str, writes: Sequence[Tuple[int, int, int, Payload]]):
        """Apply ``(stripe_idx, stripe_size, off_in_stripe, payload)`` writes."""
        total = 0
        for idx, stripe_size, off, payload in writes:
            yield self.host.env.timeout(self.model.chunk_request_overhead)
            self._stripe(path, idx, stripe_size).write(off, payload)
            if self.cache_stripes:
                self._ram.add((path, idx))
            total += payload.size
        # PVFS semantics: synchronous write-through to the server disk.
        yield from self.host.disk.write(total, sequential=True)
        self.host.fabric.metrics.count("pvfs-write", len(writes))
        return None

    def stored_bytes(self) -> int:
        return sum(s.written_bytes() for s in self._stripes.values())


class PvfsMetaServer:
    """One metadata server: a shard of the path namespace."""

    def __init__(self, host: Host, model: ServiceModel, deployment: "PvfsDeployment" = None):
        self.host = host
        self.model = model
        self.deployment = deployment
        self.files: Dict[str, PvfsFileMeta] = {}

    def rpc_create(self, caller: Host, meta: PvfsFileMeta):
        """Create a file: a datafile handle on *every* I/O server.

        PVFS creates are expensive by design — the metadata server
        synchronously provisions a datafile on each server in the layout
        (a small random metadata write per server). This is what makes a
        new-file-per-snapshot scheme costly at scale (Fig. 5).
        """
        yield self.host.env.timeout(self.model.metadata_node_overhead)
        if meta.path in self.files:
            raise StorageError(f"pvfs: {meta.path!r} exists")
        if self.deployment is not None:
            for server_name in meta.layout:
                server = self.deployment.io_servers[server_name]
                yield self.host.env.timeout(self.model.metadata_node_overhead)
                yield from server.host.disk.write(4096, sequential=False)
        self.files[meta.path] = meta
        return None

    def rpc_lookup(self, caller: Host, path: str):
        yield self.host.env.timeout(self.model.metadata_node_overhead)
        meta = self.files.get(path)
        if meta is None:
            raise StorageError(f"pvfs: no such file {path!r}")
        return meta

    def rpc_truncate(self, caller: Host, path: str, size: int):
        yield self.host.env.timeout(self.model.metadata_node_overhead)
        meta = self.files.get(path)
        if meta is None:
            raise StorageError(f"pvfs: no such file {path!r}")
        self.files[path] = PvfsFileMeta(path, size, meta.stripe_size, meta.layout)
        return None


class PvfsDeployment:
    """A running PVFS instance."""

    def __init__(
        self,
        fabric: Fabric,
        io_hosts: Sequence[Host],
        meta_hosts: Optional[Sequence[Host]] = None,
        stripe_size: int = 256 * 1024,
        model: Optional[ServiceModel] = None,
    ):
        if not io_hosts:
            raise StorageError("pvfs needs at least one I/O server")
        self.fabric = fabric
        self.stripe_size = stripe_size
        self.model = model if model is not None else ServiceModel()
        self.io_hosts = list(io_hosts)
        self.meta_hosts = list(meta_hosts) if meta_hosts else list(io_hosts)
        self.io_servers: Dict[str, PvfsIoServer] = {}
        for host in self.io_hosts:
            srv = PvfsIoServer(host, self.model)
            rpc.bind(host, "pvfs-io", srv)
            self.io_servers[host.name] = srv
        self.meta_servers: Dict[str, PvfsMetaServer] = {}
        for host in self.meta_hosts:
            srv = PvfsMetaServer(host, self.model, deployment=self)
            rpc.bind(host, "pvfs-meta", srv)
            self.meta_servers[host.name] = srv

    def meta_host_for(self, path: str) -> Host:
        acc = 2166136261
        for ch in path.encode():
            acc = ((acc ^ ch) * 16777619) & 0xFFFFFFFF
        return self.meta_hosts[acc % len(self.meta_hosts)]

    def client(self, host: Host) -> "PvfsClient":
        return PvfsClient(host, self)

    def stored_bytes(self) -> int:
        return sum(s.stored_bytes() for s in self.io_servers.values())

    def peek(self, path: str, offset: int, nbytes: int) -> Payload:
        """Content-plane read bypassing the simulated fabric.

        Used by pure-format callbacks (the qcow2 backing read) whose timing
        is charged separately by the simulated backend; always consistent
        with the stripe stores.
        """
        shard = self.meta_host_for(path)
        meta = self.meta_servers[shard.name].files.get(path)
        if meta is None:
            raise StorageError(f"pvfs: no such file {path!r}")
        if offset < 0 or offset + nbytes > meta.size:
            raise StorageError(f"pvfs peek beyond eof of {path!r}")
        parts: List[Payload] = []
        cursor = offset
        end = offset + nbytes
        while cursor < end:
            idx = cursor // meta.stripe_size
            s_lo = idx * meta.stripe_size
            w_hi = min(end, s_lo + meta.stripe_size)
            server = self.io_servers[meta.layout[idx % len(meta.layout)]]
            parts.append(
                server._stripe(path, idx, meta.stripe_size).read(cursor - s_lo, w_hi - cursor)
            )
            cursor = w_hi
        return Payload.concat(parts)

    # Zero-time setup injection (mirror of BlobSeer's seed_blob).
    def seed_file(self, path: str, payload: Payload) -> PvfsFileMeta:
        layout = tuple(h.name for h in self.io_hosts)
        meta = PvfsFileMeta(path, payload.size, self.stripe_size, layout)
        shard = self.meta_host_for(path)
        self.meta_servers[shard.name].files[path] = meta
        for idx in range(-(-payload.size // self.stripe_size)):
            lo = idx * self.stripe_size
            hi = min(lo + self.stripe_size, payload.size)
            server = self.io_servers[layout[idx % len(layout)]]
            server._stripe(path, idx, self.stripe_size).write(0, payload.slice(lo, hi))
        return meta


class PvfsClient:
    """Per-host PVFS access library."""

    def __init__(self, host: Host, deployment: PvfsDeployment):
        self.host = host
        self.deployment = deployment
        self._meta_cache: Dict[str, PvfsFileMeta] = {}

    def _parallel(self, gens) -> Generator:
        procs = self.host.env.process_batch(gens)
        results = yield self.host.env.all_of(procs)
        return results

    def _lookup(self, path: str) -> Generator:
        meta = self._meta_cache.get(path)
        if meta is None:
            shard = self.deployment.meta_host_for(path)
            meta = yield from rpc.call(self.host, shard, "pvfs-meta", "lookup", path)
            self._meta_cache[path] = meta
        return meta

    def create(self, path: str, size: int) -> Generator:
        dep = self.deployment
        meta = PvfsFileMeta(path, size, dep.stripe_size, tuple(h.name for h in dep.io_hosts))
        shard = dep.meta_host_for(path)
        yield from rpc.call(self.host, shard, "pvfs-meta", "create", meta)
        self._meta_cache[path] = meta
        return meta

    def _plan(self, meta: PvfsFileMeta, offset: int, nbytes: int):
        """Split a range into per-server stripe requests (ordered per server)."""
        by_server: Dict[str, List[Tuple[int, int, int, int]]] = {}
        cursor = offset
        end = offset + nbytes
        while cursor < end:
            idx = cursor // meta.stripe_size
            s_lo = idx * meta.stripe_size
            w_hi = min(end, s_lo + meta.stripe_size)
            server = meta.layout[idx % len(meta.layout)]
            by_server.setdefault(server, []).append(
                (idx, meta.stripe_size, cursor - s_lo, w_hi - cursor)
            )
            cursor = w_hi
        return by_server

    def read(self, path: str, offset: int, nbytes: int) -> Generator:
        meta = yield from self._lookup(path)
        if offset < 0 or offset + nbytes > meta.size:
            raise StorageError(f"pvfs read beyond eof of {path!r}")
        by_server = self._plan(meta, offset, nbytes)
        dep = self.deployment

        def fetch(server_name, requests):
            server = dep.fabric.hosts[server_name]
            data = yield from rpc.call(self.host, server, "pvfs-io", "read", path, requests)
            return requests, data

        results = yield from self._parallel(
            [fetch(s, reqs) for s, reqs in sorted(by_server.items())]
        )
        # Reassemble in stripe order.
        pieces: List[Tuple[int, Payload]] = []
        for requests, data in results:
            cursor = 0
            for idx, stripe_size, off, ln in requests:
                pieces.append((idx * stripe_size + off, data.slice(cursor, cursor + ln)))
                cursor += ln
        pieces.sort(key=lambda t: t[0])
        return Payload.concat([p for _, p in pieces])

    def write(self, path: str, offset: int, payload: Payload) -> Generator:
        meta = yield from self._lookup(path)
        if offset < 0 or offset + payload.size > meta.size:
            raise StorageError(f"pvfs write beyond eof of {path!r}")
        by_server = self._plan(meta, offset, payload.size)
        dep = self.deployment

        def push(server_name, requests):
            server = dep.fabric.hosts[server_name]
            writes = []
            for idx, stripe_size, off, ln in requests:
                abs_lo = idx * stripe_size + off
                writes.append(
                    (idx, stripe_size, off, payload.slice(abs_lo - offset, abs_lo - offset + ln))
                )
            total = sum(w[3].size for w in writes)
            yield from rpc.call(
                self.host, server, "pvfs-io", "write", path, writes,
                request_bytes=total + 64 * len(writes),
            )

        yield from self._parallel([push(s, reqs) for s, reqs in sorted(by_server.items())])
        return None
