"""Shared builders for the lineage test suite."""

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def run(fab, gen):
    return fab.run(fab.env.process(gen))


def make(replication=1, seed=7, n_hosts=4):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(n_hosts)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(
        fab, hosts, hosts, manager, replication_factor=replication
    )
    rec = dep.seed_blob(Payload.from_bytes(pattern(IMG)), CHUNK)
    return fab, dep, hosts, rec


def build_chain(fab, dep, host, rec, depth, seed0=20, chunk_index=None):
    """CLONE the seed blob, then COMMIT ``depth`` one-chunk diffs.

    Returns the snapshot records in publish order: the clone head (v1)
    first, then one record per commit (v2 .. v(depth+1)) — the same chain
    shape a churn VM's MirrorHandle produces. Diffs cycle through the
    image's chunks by default; a fixed ``chunk_index`` rewrites the same
    chunk every commit, so each interior version's diff is superseded by
    the next (the shape where delta-merge actually reclaims bytes).
    """
    client = dep.client(host)

    def scenario():
        clone = yield from client.clone(rec.blob_id, rec.version)
        records = [clone]
        for i in range(depth):
            idx = (i % 8) if chunk_index is None else chunk_index
            r = yield from client.write_chunks(
                clone.blob_id,
                {idx: Payload.from_bytes(pattern(CHUNK, seed0 + i))},
            )
            records.append(r)
        return records

    return run(fab, scenario())
