"""Locality consumers: peer ranking, replica placement, churn placement.

The topology's ``rack()`` map feeds three independent policies — the p2p
directories (rack-ranked candidate order), the BlobSeer provider manager
(rack-diverse replica sets, same-rack replica reads) and the churn
scheduler (rack-affinity placement). Each is tested in isolation on its
pure state machine, plus one end-to-end check that rack-aware replica
reads keep the no-failure deploy path entirely off the uplink.
"""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy
from repro.common.errors import StorageError
from repro.common.units import KiB, MB, MiB
from repro.blobseer.pmanager import PlacementPolicy
from repro.churn.arrivals import DeployRequest
from repro.churn.scheduler import LocalityMap, Scheduler
from repro.p2p.directory import rack_ranked
from repro.topo import Topology
from repro.vmsim import make_image


def two_rack_topo(hosts):
    topo = Topology(n_racks=2, rack_uplink=100 * MB)
    topo.place_blocked(list(hosts))
    return topo


class TestRackRanked:
    NAMES = ("n0", "n1", "n2", "n3")

    def test_partition_is_stable(self):
        topo = two_rack_topo(self.NAMES)
        # n3 sits in rack 1 with n2; same-rack candidates come first, and
        # relative order inside each partition is preserved
        assert rack_ranked(topo, "n3", ("n0", "n2", "n1")) == ("n2", "n0", "n1")

    def test_no_topology_is_identity(self):
        assert rack_ranked(None, "n0", self.NAMES) == self.NAMES

    def test_all_same_rack_is_identity(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        for n in self.NAMES:
            topo.place(n, 0)
        assert rack_ranked(topo, "n0", self.NAMES) == self.NAMES

    def test_no_same_rack_candidate_is_identity(self):
        topo = two_rack_topo(self.NAMES)
        assert rack_ranked(topo, "n0", ("n2", "n3")) == ("n2", "n3")


class TestRackDiversePlacement:
    PROVIDERS = ["n0", "n1", "n2", "n3"]
    RACK_OF = {"n0": 0, "n1": 0, "n2": 1, "n3": 1}

    def policy(self, **kw):
        return PlacementPolicy(
            self.PROVIDERS, strategy="rack-diverse",
            replication_factor=2, rack_of=self.RACK_OF, **kw
        )

    def test_requires_rack_map(self):
        with pytest.raises(StorageError):
            PlacementPolicy(self.PROVIDERS, strategy="rack-diverse")

    def test_replicas_span_racks(self):
        policy = self.policy()
        for picks in policy.allocate(8, chunk_size=1):
            racks = {self.RACK_OF[p] for p in picks}
            assert racks == {0, 1}, picks

    def test_start_rack_rotates(self):
        policy = self.policy()
        first = [picks[0] for picks in policy.allocate(4, chunk_size=1)]
        # replica-0 alternates racks chunk to chunk
        assert [self.RACK_OF[p] for p in first] == [0, 1, 0, 1]

    def test_within_rack_cursor_spreads_load(self):
        policy = self.policy()
        policy.allocate(4, chunk_size=1)
        counts = policy.load_bytes
        assert set(counts.values()) == {2}, counts

    def test_replication_beyond_racks_falls_back(self):
        policy = PlacementPolicy(
            self.PROVIDERS, strategy="rack-diverse",
            replication_factor=3, rack_of=self.RACK_OF,
        )
        (picks,) = policy.allocate(1, chunk_size=1)
        assert len(picks) == len(set(picks)) == 3

    def test_exclude_avoids_dead_providers(self):
        policy = self.policy()
        for picks in policy.allocate(4, chunk_size=1, exclude=("n2",)):
            assert "n2" not in picks
            assert len(set(picks)) == 2


class TestRackAffinityScheduler:
    NODES = ["n0", "n1", "n2", "n3"]
    RACK_OF = {"n0": 0, "n1": 0, "n2": 1, "n3": 1}

    def test_prefers_tenant_racks(self):
        loc = LocalityMap(self.NODES, rack_of=self.RACK_OF)
        sched = Scheduler(4, policy="rack-affinity", locality=loc)
        loc.note_hosted(2, tenant=9)  # tenant 9 lives in rack 1
        # the warm node itself wins first (affinity + same rack) ...
        state, node = sched.submit(DeployRequest(req_id=0, at=0.0, tenant=9))
        assert (state, node) == ("placed", 2)
        # ... and with n2 full, the rack-1 sibling beats the empty rack 0
        state, node = sched.submit(DeployRequest(req_id=1, at=0.0, tenant=9))
        assert (state, node) == ("placed", 3)

    def test_unknown_tenant_degrades_to_least_loaded(self):
        loc = LocalityMap(self.NODES, rack_of=self.RACK_OF)
        sched = Scheduler(4, policy="rack-affinity", locality=loc)
        state, node = sched.submit(DeployRequest(req_id=0, at=0.0, tenant=1))
        assert (state, node) == ("placed", 0)

    def test_no_rack_map_matches_locality_policy(self):
        reqs = [DeployRequest(req_id=i, at=0.0, tenant=i % 2) for i in range(4)]
        placements = {}
        for policy in ("locality", "rack-affinity"):
            loc = LocalityMap(self.NODES)  # flat: no rack_of
            sched = Scheduler(4, policy=policy, locality=loc, slots_per_node=1)
            placed = []
            for req in reqs:
                _state, node = sched.submit(req)
                placed.append(node)
                loc.note_hosted(node, req.tenant)
            placements[policy] = placed
        assert placements["locality"] == placements["rack-affinity"]

    def test_tenant_racks_tracked_on_note_hosted(self):
        loc = LocalityMap(self.NODES, rack_of=self.RACK_OF)
        loc.note_hosted(0, tenant=5)
        loc.note_hosted(3, tenant=5)
        assert loc.tenant_racks[5] == {0, 1}


class TestRackAwareReadsEndToEnd:
    CALIB = Calibration(
        image=ImageSpec(
            size=32 * MiB, chunk_size=256 * KiB, boot_touched_bytes=4 * MiB
        )
    )

    def _deploy(self, topo_aware):
        cloud = build_cloud(
            8,
            seed=3,
            calib=self.CALIB,
            racks=2,
            replication_factor=2,
            placement="rack-diverse",
            topo_aware=topo_aware,
        )
        image = make_image(
            self.CALIB.image.size,
            self.CALIB.image.boot_touched_bytes,
            n_regions=16,
        )
        deploy(cloud, image, 8, "mirror")
        m = cloud.metrics
        return (
            m.topo_kind_bytes("intra-rack", "payload"),
            m.topo_kind_bytes("cross-rack", "payload"),
        )

    def test_rack_aware_reads_stay_intra_rack(self):
        intra, cross = self._deploy(topo_aware=True)
        assert cross == 0
        assert intra > 0

    def test_blind_reads_cross_the_uplink(self):
        _intra, cross = self._deploy(topo_aware=False)
        assert cross > 0
