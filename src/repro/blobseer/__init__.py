"""A functional reimplementation of the BlobSeer versioning storage service.

Striping, distributed versioned segment-tree metadata with shadowing and
cloning (paper Fig. 3), asynchronous chunk writes, and a publish protocol
with a totally ordered snapshot history per BLOB.
"""

from .client import BlobClient, LATEST
from .gc import GcReport, collect_garbage
from .metadata import (
    ChunkRef,
    MetadataStore,
    TreeNode,
    build_tree,
    capacity_for,
    clone_root,
    lookup,
    lookup_range,
    reachable_nodes,
    shared_nodes,
    write_chunks,
)
from .pmanager import PlacementPolicy
from .service import BlobSeerDeployment
from .store import ChunkStore, KeyMinter
from .vmanager import BlobRegistry, LineageEntry, SnapshotRecord

__all__ = [
    "BlobClient",
    "BlobRegistry",
    "BlobSeerDeployment",
    "ChunkRef",
    "ChunkStore",
    "GcReport",
    "collect_garbage",
    "KeyMinter",
    "LATEST",
    "LineageEntry",
    "MetadataStore",
    "PlacementPolicy",
    "SnapshotRecord",
    "TreeNode",
    "build_tree",
    "capacity_for",
    "clone_root",
    "lookup",
    "lookup_range",
    "reachable_nodes",
    "shared_nodes",
    "write_chunks",
]
