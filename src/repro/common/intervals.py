"""Half-open interval arithmetic over byte offsets.

The mirroring module and the modification manager reason constantly about
which byte ranges of an image are present locally, dirty, or missing. This
module provides a small, well-tested algebra of **sorted, coalesced sets of
half-open intervals** ``[lo, hi)`` used by those components.

:class:`IntervalSet` is immutable-by-discipline: mutating operations return
``None`` and keep the internal list sorted and disjoint (adjacent intervals
are merged), so the canonical-form invariant always holds. Property-based
tests in ``tests/common/test_intervals.py`` verify the algebra against a
brute-force bitmap model.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple

Interval = Tuple[int, int]


def clamp(lo: int, hi: int, bound_lo: int, bound_hi: int) -> Interval:
    """Intersect ``[lo, hi)`` with ``[bound_lo, bound_hi)`` (may be empty)."""
    return max(lo, bound_lo), min(hi, bound_hi)


class IntervalSet:
    """A set of byte offsets stored as sorted disjoint half-open intervals."""

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._ivs: List[Interval] = []
        for lo, hi in intervals:
            self.add(lo, hi)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)``, merging with overlapping/adjacent intervals."""
        if lo >= hi:
            return
        ivs = self._ivs
        # Find insertion window: all intervals whose end >= lo and start <= hi
        # are merged with the new one.
        i = bisect_right(ivs, (lo, lo)) - 1
        if i >= 0 and ivs[i][1] >= lo:
            start = i
        else:
            start = i + 1
        j = start
        n = len(ivs)
        new_lo, new_hi = lo, hi
        while j < n and ivs[j][0] <= hi:
            new_lo = min(new_lo, ivs[j][0])
            new_hi = max(new_hi, ivs[j][1])
            j += 1
        ivs[start:j] = [(new_lo, new_hi)]

    def remove(self, lo: int, hi: int) -> None:
        """Delete ``[lo, hi)`` from the set (splitting intervals as needed)."""
        if lo >= hi or not self._ivs:
            return
        ivs = self._ivs
        i, j = self._overlap_window(lo, hi)
        if i == j:
            return
        repl: List[Interval] = []
        a0, _ = ivs[i]
        if a0 < lo:
            repl.append((a0, lo))
        _, b1 = ivs[j - 1]
        if b1 > hi:
            repl.append((hi, b1))
        ivs[i:j] = repl

    def _overlap_window(self, lo: int, hi: int) -> Tuple[int, int]:
        """Index range ``[i, j)`` of intervals overlapping ``[lo, hi)``."""
        ivs = self._ivs
        k = bisect_left(ivs, (lo,))
        i = k - 1 if k > 0 and ivs[k - 1][1] > lo else k
        j = bisect_left(ivs, (hi,), i)
        return i, j

    def clear(self) -> None:
        self._ivs.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, lo: int, hi: int) -> bool:
        """True iff every offset of ``[lo, hi)`` is in the set."""
        if lo >= hi:
            return True
        i = bisect_right(self._ivs, (lo, float("inf"))) - 1
        return i >= 0 and self._ivs[i][0] <= lo and self._ivs[i][1] >= hi

    def overlaps(self, lo: int, hi: int) -> bool:
        """True iff any offset of ``[lo, hi)`` is in the set."""
        if lo >= hi:
            return False
        i = bisect_right(self._ivs, (lo, float("inf"))) - 1
        if i >= 0 and self._ivs[i][1] > lo:
            return True
        i += 1
        return i < len(self._ivs) and self._ivs[i][0] < hi

    def gaps(self, lo: int, hi: int) -> List[Interval]:
        """Sub-intervals of ``[lo, hi)`` *not* covered by the set, in order.

        Bisects to the first overlapping interval, so the cost is
        proportional to the overlap count, not the set size.
        """
        out: List[Interval] = []
        if lo >= hi:
            return out
        i, j = self._overlap_window(lo, hi)
        cursor = lo
        for a, b in self._ivs[i:j]:
            if a > cursor:
                out.append((cursor, a))
            if b > cursor:
                cursor = b
            if cursor >= hi:
                break
        if cursor < hi:
            out.append((cursor, hi))
        return out

    def intersect(self, lo: int, hi: int) -> List[Interval]:
        """Sub-intervals of ``[lo, hi)`` covered by the set, in order."""
        out: List[Interval] = []
        if lo >= hi:
            return out
        i, j = self._overlap_window(lo, hi)
        for a, b in self._ivs[i:j]:
            c_lo = a if a > lo else lo
            c_hi = b if b < hi else hi
            if c_lo < c_hi:
                out.append((c_lo, c_hi))
        return out

    def total(self) -> int:
        """Total number of covered bytes."""
        return sum(b - a for a, b in self._ivs)

    def span(self) -> Interval:
        """Smallest ``[lo, hi)`` containing the whole set (``(0, 0)`` if empty)."""
        if not self._ivs:
            return (0, 0)
        return (self._ivs[0][0], self._ivs[-1][1])

    def is_single_interval(self) -> bool:
        """True iff the set is empty or one contiguous interval.

        This is the fragmentation invariant the paper's second mirroring
        strategy maintains *per chunk* (§3.3).
        """
        return len(self._ivs) <= 1

    def copy(self) -> "IntervalSet":
        new = IntervalSet()
        new._ivs = list(self._ivs)
        return new

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __repr__(self) -> str:
        body = ", ".join(f"[{a},{b})" for a, b in self._ivs)
        return f"IntervalSet({body})"
