"""Command-line interface: run the canonical experiments from a shell.

Subcommands::

    python -m repro deploy    --instances 16 --approach mirror
    python -m repro snapshot  --instances 16 --diff-mib 15
    python -m repro sweep     --figure fig4 --profile quick --jobs 4
    python -m repro faults    --instances 8 --replication 2 --crashes 2
    python -m repro p2p       --instances 32 --directory announce
    python -m repro topo      --racks 4 --oversubscription 4
    python -m repro churn     --deploys 200 --policy locality --p2p
    python -m repro lineage   --depth 8 --compact --policy flatten
    python -m repro trace     --figure fig4 -n 8
    python -m repro bonnie
    python -m repro info
    python -m repro --version

``deploy`` and ``snapshot`` build a fresh simulated cluster, run the chosen
pattern at the requested scale, and print the paper's metrics; ``sweep``
runs a whole figure's measurement sweep through the parallel
:mod:`repro.runner` engine (multi-core fan-out plus the persistent result
cache); ``faults`` replays a multideployment while a deterministic fault
plan crashes storage nodes (chunk replication + client failover keep it
alive); ``topo`` deploys over a hierarchical (racked, oversubscribed)
fabric and compares locality-aware policies against a topology-blind
baseline; ``churn`` runs a long-horizon multi-tenant arrival/teardown stream
through the placement engine and prints steady-state SLOs; ``lineage``
builds a deep snapshot chain, optionally compacts it, and restores a VM
from the chain head with exact dedup accounting; ``trace``
replays one figure's scenario with the causal tracer
enabled and writes a Chrome/Perfetto ``trace_event`` JSON plus the
critical-path breakdown; ``bonnie`` runs the §5.4 micro-benchmark; ``info``
dumps the active calibration.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

from .calibration import DEFAULT, Calibration, ImageSpec
from .common.units import GiB, KiB, MiB, fmt_rate, fmt_size, fmt_time


def _add_cluster_args(
    parser: argparse.ArgumentParser, instances_flags=("--instances",)
) -> None:
    parser.add_argument(
        *instances_flags, dest="instances", type=int, default=16,
        help="concurrent VMs",
    )
    parser.add_argument("--pool", type=int, default=0,
                        help="storage pool size (0 = max(24, instances))")
    parser.add_argument("--image-mib", type=int, default=1024, help="image size in MiB")
    parser.add_argument("--touched-mib", type=int, default=64,
                        help="bytes the boot actually reads, in MiB")
    parser.add_argument("--chunk-kib", type=int, default=256, help="chunk size in KiB")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")


def _calibration(args) -> Calibration:
    return Calibration(
        image=ImageSpec(
            size=args.image_mib * MiB,
            chunk_size=args.chunk_kib * KiB,
            boot_touched_bytes=args.touched_mib * MiB,
        )
    )


def _pool(args) -> int:
    return args.pool if args.pool > 0 else max(24, args.instances)


def _maybe_install_tracer(args, cloud):
    """Honour a ``--trace [PATH]`` flag; returns the live tracer or None."""
    if getattr(args, "trace", None) is None:
        return None
    from . import obs

    return obs.install_tracer(cloud.fabric)


def _maybe_write_trace(args, tracer, default_name: str) -> None:
    if tracer is None:
        return
    from . import obs

    out = args.trace or default_name
    tracer.finish_open_spans()
    obs.write_trace_json(out, tracer)
    print(f"trace:           {out} ({len(tracer.spans)} spans; "
          f"open in https://ui.perfetto.dev)")


def cmd_deploy(args) -> int:
    from .cloud import build_cloud, deploy
    from .vmsim import make_image

    calib = _calibration(args)
    cloud = build_cloud(_pool(args), seed=args.seed, calib=calib)
    tracer = _maybe_install_tracer(args, cloud)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=48)
    res = deploy(cloud, image, args.instances, args.approach)
    print(f"approach:        {res.approach}")
    print(f"instances:       {res.n_instances}")
    print(f"init phase:      {fmt_time(res.init_time)}")
    print(f"avg boot:        {fmt_time(res.avg_boot_time)}")
    print(f"completion:      {fmt_time(res.completion_time)}")
    print(f"network traffic: {fmt_size(res.total_traffic)}")
    _maybe_write_trace(
        args, tracer, f"deploy-{args.approach}-n{args.instances}.trace.json"
    )
    return 0


def cmd_snapshot(args) -> int:
    from .cloud import build_cloud, deploy, snapshot_all
    from .vmsim import make_image
    from .vmsim.workloads import read_your_writes_workload

    calib = _calibration(args)
    cloud = build_cloud(_pool(args), seed=args.seed, calib=calib)
    tracer = _maybe_install_tracer(args, cloud)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=48)
    res = deploy(cloud, image, args.instances, args.approach)

    def diff(vm, i):
        ops = read_your_writes_workload(
            image.write_base, args.diff_mib * MiB,
            cloud.fabric.rng.get("cli-diff", i), reread_fraction=0.05,
        )
        yield from vm.run_ops(ops)

    procs = [cloud.env.process(diff(vm, i)) for i, vm in enumerate(res.vms)]
    cloud.run(cloud.env.all_of(procs))
    snap = snapshot_all(cloud, res.vms, args.approach)
    print(f"approach:          {snap.approach}")
    print(f"instances:         {snap.n_instances}")
    print(f"avg snapshot time: {fmt_time(snap.avg_time)}")
    print(f"completion:        {fmt_time(snap.completion_time)}")
    print(f"bytes persisted:   {fmt_size(snap.total_bytes_moved)}")
    _maybe_write_trace(
        args, tracer, f"snapshot-{args.approach}-n{args.instances}.trace.json"
    )
    return 0


def cmd_trace(args) -> int:
    from . import obs
    from .cloud import build_cloud, deploy, snapshot_all
    from .vmsim import make_image
    from .vmsim.workloads import read_your_writes_workload

    if args.figure == "fig5" and args.approach == "prepropagation":
        print("error: prepropagation cannot multisnapshot (paper §5.3)",
              file=sys.stderr)
        return 2
    calib = _calibration(args)
    cloud = build_cloud(_pool(args), seed=args.seed, calib=calib)
    tracer = obs.install_tracer(cloud.fabric)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=48)
    res = deploy(cloud, image, args.instances, args.approach)

    if args.figure == "fig5":
        def diff(vm, i):
            ops = read_your_writes_workload(
                image.write_base, args.diff_mib * MiB,
                cloud.fabric.rng.get("cli-diff", i), reread_fraction=0.05,
            )
            yield from vm.run_ops(ops)

        procs = [cloud.env.process(diff(vm, i)) for i, vm in enumerate(res.vms)]
        cloud.run(cloud.env.all_of(procs))
        snapshot_all(cloud, res.vms, args.approach)
        roots = obs.snapshot_spans(tracer.spans)
        title = "per-VM snapshot time breakdown (seconds)"
    else:
        roots = obs.boot_spans(tracer.spans)
        title = "per-VM boot time breakdown (seconds)"

    tracer.finish_open_spans()
    out = args.out or f"{args.figure}-n{args.instances}.trace.json"
    obs.write_trace_json(out, tracer)

    if roots:
        print(obs.render_breakdown_table(roots, tracer.spans, title=title))
        print()
        print(obs.render_critical_path(roots[0], tracer.spans))
        covs = [obs.coverage(r, tracer.spans) for r in roots]
        print()
        print(f"span coverage:   {min(covs):.1%} (worst VM) / "
              f"{sum(covs) / len(covs):.1%} (mean)")
    print(f"trace:           {out} ({len(tracer.spans)} spans; "
          f"open in https://ui.perfetto.dev)")
    return 0


def cmd_faults(args) -> int:
    from .cloud import build_cloud
    from .faults import FaultPlan, RetryPolicy, resilient_deploy
    from .vmsim import make_image

    calib = _calibration(args)
    pool = _pool(args)
    retry = RetryPolicy(
        attempts=args.attempts,
        base_delay=args.base_delay,
        rpc_timeout=args.rpc_timeout,
    )
    cloud = build_cloud(
        pool, seed=args.seed, calib=calib,
        replication_factor=args.replication,
        replica_write_mode=args.write_mode,
        retry=retry,
    )
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=48)
    spares = [h.name for h in cloud.compute[args.instances:]]
    if args.crashes > len(spares):
        print(f"error: {args.crashes} crashes exceed the {len(spares)} spare "
              f"nodes of a {pool}-node pool with {args.instances} instances",
              file=sys.stderr)
        return 2
    if args.crashes == 0:
        plan = FaultPlan()
    elif args.plan == "staggered":
        plan = FaultPlan.staggered_crashes(
            spares, args.crashes, args.window, mttr=args.mttr
        )
    else:
        plan = FaultPlan.random_crashes(
            spares, args.crashes, args.window, mttr=args.mttr,
            seed=args.faults_seed if args.faults_seed is not None else args.seed,
        )
    res = resilient_deploy(cloud, image, args.instances, args.approach, plan=plan)
    print(f"approach:        {res.approach}  (replication={args.replication}, "
          f"{args.write_mode} writes)")
    print(f"fault plan:      {plan.describe()}")
    if cloud.injector is not None:
        print(f"injected:        {len(cloud.injector.applied)} incidents")
    print(f"instances:       {res.n_instances}")
    print(f"booted:          {res.boots_completed}  "
          f"(survival {res.survival_rate:.0%})")
    if res.failed:
        print(f"failed:          " + ", ".join(
            f"{name} ({why})" for name, why in sorted(res.failed.items())))
    print(f"init phase:      {fmt_time(res.init_time)}")
    print(f"avg boot:        {fmt_time(res.avg_boot_time)}")
    print(f"completion:      {fmt_time(res.completion_time)}")
    print(f"network traffic: {fmt_size(res.total_traffic)}")
    retries = sum(
        cloud.metrics.counters.get(k, 0)
        for k in ("fetch-retry", "meta-retry", "put-retry")
    )
    print(f"client retries:  {retries}")
    return 0 if res.boots_failed == 0 else 1


def cmd_p2p(args) -> int:
    from .cloud import build_cloud, deploy
    from .vmsim import make_image

    calib = _calibration(args)
    pool = _pool(args)

    def run(p2p_on: bool):
        kw = {}
        if p2p_on:
            kw = dict(
                p2p=True,
                p2p_directory=args.directory,
                p2p_locate_fanout=args.fanout,
            )
            if args.cache_mib > 0:
                kw["p2p_cache_bytes"] = args.cache_mib * MiB
        cloud = build_cloud(pool, seed=args.seed, calib=calib, **kw)
        image = make_image(
            calib.image.size, calib.image.boot_touched_bytes, n_regions=48
        )
        res = deploy(cloud, image, args.instances, "mirror")
        return cloud, res

    base_cloud, base = run(False)
    p2p_cloud, res = run(True)
    base_pb = base_cloud.metrics.counters.get("provider-bytes", 0)
    p2p_pb = p2p_cloud.metrics.counters.get("provider-bytes", 0)
    stats = res.p2p_stats or {}
    saved = 1.0 - (p2p_pb / base_pb) if base_pb else 0.0

    print(f"instances:        {args.instances}  (directory={args.directory}, "
          f"fanout={args.fanout})")
    print(f"avg boot:         {fmt_time(base.avg_boot_time)} -> "
          f"{fmt_time(res.avg_boot_time)}")
    print(f"completion:       {fmt_time(base.completion_time)} -> "
          f"{fmt_time(res.completion_time)}")
    print(f"provider bytes:   {fmt_size(base_pb)} -> {fmt_size(p2p_pb)} "
          f"({saved:.0%} served by peers instead)")
    print(f"peer hit ratio:   {stats.get('peer_hit_ratio', 0.0):.1%}")
    print(f"bytes from peers: {fmt_size(stats.get('bytes_from_peers', 0))}")
    print(f"peer failovers:   {stats.get('peer_failovers', 0)}")

    if args.smoke:
        # self-check: the exchange actually served chunks, and a disabled
        # build is deterministic (two p2p=False runs -> identical timelines)
        base2_cloud, base2 = run(False)
        identical = (
            base_cloud.env.now == base2_cloud.env.now
            and base_cloud.env.event_count == base2_cloud.env.event_count
            and base.total_traffic == base2.total_traffic
            and base.boot_times == base2.boot_times
        )
        hit = stats.get("peer_hit_ratio", 0.0) > 0.0
        improved = p2p_pb < base_pb
        print(f"smoke: off-path identical={identical} peer-hits={hit} "
              f"provider-bytes-reduced={improved}")
        if not (identical and hit and improved):
            print("error: p2p smoke check failed", file=sys.stderr)
            return 1
    return 0


def cmd_topo(args) -> int:
    from .runner import PointSpec, execute_point, resolve_profile

    profile = resolve_profile(args.profile)
    n = args.instances if args.instances > 0 else profile.instance_counts[0]

    def spec_for(locality: bool, racks=None):
        params = [
            ("racks", racks if racks is not None else args.racks),
            ("oversubscription", args.oversubscription),
            ("locality", locality),
            ("directory", args.directory),
            ("locate_fanout", args.fanout),
        ]
        if args.no_p2p:
            params.append(("p2p", False))
        if args.replication > 1:
            params.append(("replication", args.replication))
        return PointSpec(
            kind="topo", profile=profile.name, approach="mirror",
            n=n, seed=args.seed, params=tuple(params),
        )

    blind = execute_point(spec_for(False))
    aware = execute_point(spec_for(True))
    bm, am = blind.metrics, aware.metrics

    def cross_frac(m):
        total = m["intra_rack_bytes"] + m["cross_rack_bytes"]
        return m["cross_rack_bytes"] / total if total else 0.0

    cut = (1.0 - am["cross_rack_bytes"] / bm["cross_rack_bytes"]
           if bm["cross_rack_bytes"] else 0.0)
    print(f"instances:        {n}  (racks={args.racks}, "
          f"oversubscription={args.oversubscription:g}, "
          f"p2p={not args.no_p2p}, directory={args.directory})")
    print(f"                  {'blind':>14}{'locality':>14}")
    print(f"avg boot:         {fmt_time(bm['avg_boot_time']):>14}"
          f"{fmt_time(am['avg_boot_time']):>14}")
    print(f"completion:       {fmt_time(bm['completion_time']):>14}"
          f"{fmt_time(am['completion_time']):>14}")
    print(f"intra-rack bytes: {fmt_size(bm['intra_rack_bytes']):>14}"
          f"{fmt_size(am['intra_rack_bytes']):>14}")
    print(f"cross-rack bytes: {fmt_size(bm['cross_rack_bytes']):>14}"
          f"{fmt_size(am['cross_rack_bytes']):>14}")
    print(f"cross-rack share: {cross_frac(bm):>13.1%}{cross_frac(am):>14.1%}")
    print(f"cross-rack cut:   {cut:.1%} (locality vs topology-blind)")

    if args.smoke:
        # self-checks: (1) re-executing the locality spec is bit-identical;
        # (2) locality moved bytes off the uplinks; (3) racks=1 runs the
        # flat fabric — identical timeline to the plain p2p point kind
        aware2 = execute_point(spec_for(True))
        identical = (
            aware.metrics == aware2.metrics
            and aware.series == aware2.series
            and aware.event_count == aware2.event_count
        )
        reduced = am["cross_rack_bytes"] < bm["cross_rack_bytes"]
        flat = execute_point(spec_for(True, racks=1))
        p2p_params = []
        if args.no_p2p:
            p2p_params.append(("p2p", False))
        else:
            p2p_params += [
                ("directory", args.directory), ("locate_fanout", args.fanout)
            ]
        ref = execute_point(PointSpec(
            kind="p2p", profile=profile.name, approach="mirror",
            n=n, seed=args.seed, params=tuple(p2p_params),
        ))
        off_path = (
            flat.series["boot_times"] == ref.series["boot_times"]
            and flat.metrics["completion_time"] == ref.metrics["completion_time"]
            and flat.metrics["total_traffic"] == ref.metrics["total_traffic"]
            and flat.event_count == ref.event_count
            and flat.metrics["cross_rack_bytes"] == 0.0
            and flat.metrics["intra_rack_bytes"] == 0.0
        )
        print(f"smoke: deterministic={identical} cross-rack-reduced={reduced} "
              f"off-path-identical={off_path}")
        if not (identical and reduced and off_path):
            print("error: topo smoke check failed", file=sys.stderr)
            return 1
    return 0


def cmd_churn(args) -> int:
    from .runner import PointSpec, execute_point, resolve_profile

    profile = resolve_profile(args.profile)
    n = args.deploys if args.deploys > 0 else profile.instance_counts[0]
    params = [
        ("policy", args.policy),
        ("arrivals", args.arrivals),
        ("rate", args.rate),
        ("tenants", args.tenants),
        ("mean_lifetime", args.mean_lifetime),
        ("gc_interval", args.gc_interval),
    ]
    if args.restore_fraction > 0.0:
        params.append(("restore_fraction", args.restore_fraction))
        if args.retain_snapshots:
            params.append(("retain_snapshots", True))
    if args.p2p:
        params.append(("p2p", True))
        if args.cache_mib > 0:
            params.append(("cache_mib", args.cache_mib))
    spec = PointSpec(
        kind="churn", profile=profile.name, approach=args.policy,
        n=n, seed=args.seed, params=tuple(params),
    )
    res = execute_point(spec)
    m = res.metrics

    print(f"policy:           {args.policy}  (arrivals={args.arrivals}, "
          f"rate={args.rate}/s, tenants={args.tenants}, p2p={args.p2p})")
    print(f"requests:         {m['n_requests']:.0f} total, {n} deploys "
          f"({m['booted']:.0f} booted, {m['rejected']:.0f} rejected, "
          f"{m['canceled']:.0f} canceled while queued)")
    print(f"boot latency:     p50 {fmt_time(m['boot_p50_exact'])}  "
          f"p99 {fmt_time(m['boot_p99_exact'])}  mean {fmt_time(m['boot_mean'])}")
    print(f"queue wait:       p99 {fmt_time(m['queue_wait_p99_exact'])}  "
          f"mean {fmt_time(m['queue_wait_mean'])}")
    print(f"snapshots:        {m['snapshots_taken']:.0f} taken "
          f"({m['snapshots_missed']:.0f} missed), commit p99 "
          f"{fmt_time(m['snapshot_p99_exact'])}")
    if args.restore_fraction > 0.0:
        print(f"restores:         {m['restores_completed']:.0f} completed "
              f"({m['restores_missed']:.0f} missed, "
              f"{m['restores_from_retired']:.0f} from retired chains), p99 "
              f"{fmt_time(m['restore_p99_exact'])}, mean "
              f"{m['restore_mean_hops']:.1f} hops")
    print(f"rejection rate:   {m['rejection_rate']:.1%}")
    print(f"utilization:      {m['utilization']:.1%}")
    print(f"storage:          peak {fmt_size(m['footprint_peak'])}, final "
          f"{fmt_size(m['footprint_final'])}, reclaimed "
          f"{fmt_size(m['bytes_reclaimed'])} over {m['gc_sweeps']:.0f} GC sweeps")
    print(f"makespan:         {fmt_time(m['makespan'])}")

    if args.smoke:
        # self-check: the run made progress, GC reclaimed retired state, and
        # a second execution of the same spec is bit-identical
        res2 = execute_point(spec)
        identical = (
            res.metrics == res2.metrics
            and res.series == res2.series
            and res.event_count == res2.event_count
        )
        progressed = m["booted"] > 0 and m["completed"] > 0
        reclaimed = args.gc_interval <= 0 or m["bytes_reclaimed"] > 0
        print(f"smoke: deterministic={identical} progressed={progressed} "
              f"gc-reclaimed={reclaimed}")
        if not (identical and progressed and reclaimed):
            print("error: churn smoke check failed", file=sys.stderr)
            return 1
    return 0


def cmd_lineage(args) -> int:
    from .runner import PointSpec, execute_point, resolve_profile

    profile = resolve_profile(args.profile)
    depth = args.depth if args.depth > 0 else profile.instance_counts[-1]
    params = []
    if args.compact:
        params += [
            ("compact", True),
            ("policy", args.policy),
            ("depth_bound", args.depth_bound),
        ]
    if args.replication > 1:
        params.append(("replication", args.replication))
    spec = PointSpec(
        kind="lineage", profile=profile.name, approach="mirror",
        n=depth, seed=args.seed, params=tuple(params),
    )
    res = execute_point(spec)
    m = res.metrics

    mode = (f"compact={args.policy}/{args.depth_bound}" if args.compact
            else "uncompacted")
    print(f"chain:            depth {depth} ({mode}), "
          f"{m['forest_snapshots']:.0f} snapshots in the forest")
    print(f"restore scan:     {m['scan_hops']:.0f} hops, "
          f"{fmt_time(m['scan_time'])}")
    print(f"restore latency:  {fmt_time(m['restore_time'])} "
          f"(clone {fmt_time(m['clone_time'])}, open {fmt_time(m['open_time'])})")
    print(f"restored boot:    {fmt_time(m['boot_time'])}")
    print(f"dedup accounting: exclusive {fmt_size(m['dedup_exclusive'])}, shared "
          f"{fmt_size(m['dedup_shared'])} ({m['sharing_ratio']:.1%} of "
          f"{fmt_size(m['dedup_live'])} live)")
    print(f"conservation:     exclusive+shared==live: "
          f"{'ok' if m['conserved'] else 'VIOLATED'}; live==stored: "
          f"{'ok' if m['footprint_matches'] else 'VIOLATED'}")
    if args.compact:
        print(f"compaction:       {m['skips_written']:.0f} skips written, "
              f"{m['versions_merged']:.0f} versions merged, "
              f"{fmt_time(m['compact_duration'])}")

    if args.smoke:
        # self-check: accounting conserves, the restore really walked the
        # chain, and a second execution of the same spec is bit-identical
        res2 = execute_point(spec)
        identical = (
            res.metrics == res2.metrics
            and res.series == res2.series
            and res.event_count == res2.event_count
        )
        conserved = bool(m["conserved"]) and bool(m["footprint_matches"])
        walked = m["scan_hops"] >= (1 if args.compact else depth)
        print(f"smoke: deterministic={identical} conserved={conserved} "
              f"chain-walked={walked}")
        if not (identical and conserved and walked):
            print("error: lineage smoke check failed", file=sys.stderr)
            return 1
    return 0


def cmd_bonnie(args) -> int:
    from .blobseer import BlobSeerDeployment
    from .common.payload import Payload
    from .simkit.host import Fabric
    from .vmsim import BonnieBenchmark
    from .vmsim.backends import LocalRawBackend, MirrorBackend

    size = args.image_mib * MiB
    working = min(args.working_mib * MiB, size // 2)
    rows = {}
    for kind in ("local", "mirror"):
        fabric = Fabric(seed=args.seed)
        nodes = [fabric.add_host(f"node{i}") for i in range(8)]
        manager = fabric.add_host("manager")
        dep = BlobSeerDeployment(fabric, nodes, nodes, manager)
        rec = dep.seed_blob(Payload.opaque("img", size), 256 * KiB)
        fuse = DEFAULT.fuse
        if kind == "local":
            f = nodes[0].create_file("/img", size)
            f.write(0, Payload.opaque("img", size))
            backend = LocalRawBackend(nodes[0], "/img", fuse)
            ops = (fuse.local_data_op_overhead, fuse.local_per_op_overhead)
        else:
            backend = MirrorBackend(nodes[0], dep, rec.blob_id, rec.version, fuse)
            ops = (fuse.data_op_overhead, fuse.per_op_overhead)
        bench = BonnieBenchmark(backend, *ops, working_set=working, base_offset=size // 2)
        out = {}

        def master(backend=backend, bench=bench, out=out):
            yield from backend.open()
            out["r"] = yield from bench.run()

        fabric.run(fabric.env.process(master()))
        rows[kind] = out["r"]

    print(f"{'metric':<16}{'local':>14}{'our-approach':>14}")
    for label, attr in [
        ("BlockW KB/s", "block_write_kbps"),
        ("BlockR KB/s", "block_read_kbps"),
        ("BlockO KB/s", "block_overwrite_kbps"),
        ("RndSeek ops/s", "rnd_seek_ops"),
        ("CreatF ops/s", "create_ops"),
        ("DelF ops/s", "delete_ops"),
    ]:
        print(f"{label:<16}{getattr(rows['local'], attr):>14.0f}"
              f"{getattr(rows['mirror'], attr):>14.0f}")
    return 0


#: figure -> (point kind, approaches swept)
SWEEP_FIGURES = {
    "fig4": ("deploy", ("prepropagation", "qcow2-pvfs", "mirror")),
    "fig5": ("snapshot", ("qcow2-pvfs", "mirror")),
}

#: headline metrics printed per figure sweep
SWEEP_METRICS = {
    "fig4": (("avg_boot_time", "seconds"), ("completion_time", "seconds"),
             ("total_traffic", "bytes")),
    "fig5": (("avg_time", "seconds"), ("completion_time", "seconds")),
}


def cmd_sweep(args) -> int:
    import time

    from .analysis import Figure, from_points, render_figure
    from .runner import PointSpec, ResultCache, SweepRunner, resolve_profile

    profile = resolve_profile(args.profile)
    kind, all_approaches = SWEEP_FIGURES[args.figure]
    approaches = tuple(args.approach) or all_approaches
    counts = tuple(args.counts) if args.counts else profile.instance_counts
    bad = [n for n in counts if n > profile.pool_nodes]
    if bad:
        print(f"error: counts {bad} exceed the {profile.name} profile's "
              f"{profile.pool_nodes}-node pool", file=sys.stderr)
        return 2

    specs = [
        PointSpec(kind=kind, profile=profile.name, approach=a, n=n, seed=args.seed)
        for a in approaches
        for n in counts
    ]
    cache = None if args.no_cache else ResultCache(
        Path(args.cache_dir) if args.cache_dir else None
    )
    runner = SweepRunner(jobs=args.jobs, cache=cache, refresh=args.refresh)
    t0 = time.perf_counter()
    results = runner.run(specs)
    wall = time.perf_counter() - t0

    by_approach = {a: [r for r in results if r.spec.approach == a] for a in approaches}
    for metric, unit in SWEEP_METRICS[args.figure]:
        fig = Figure(f"{args.figure}-{metric}", f"{args.figure} sweep: {metric}",
                     "instances", unit)
        for a in approaches:
            fig.add_series(from_points(by_approach[a], metric, a))
        print(render_figure(fig, fmt="{:14.3f}"))
        print()

    stats = runner.stats
    rate = f", {len(specs) / wall:.2f} points/s" if wall > 0 else ""
    print(f"sweep: {len(specs)} points ({stats.executed} simulated, "
          f"{stats.cached} from cache) in {wall:.2f}s{rate} "
          f"[jobs={runner.jobs}, profile={profile.name}]")
    if cache is not None:
        print(f"cache: {cache.root} ({len(cache)} entries)")
    return 0


def cmd_info(args) -> int:
    calib = DEFAULT
    print("calibration (Grid'5000 Nancy, paper §5.1):")
    for section_field in dataclasses.fields(calib):
        section = getattr(calib, section_field.name)
        print(f"  [{section_field.name}]")
        for f in dataclasses.fields(section):
            print(f"    {f.name} = {getattr(section, f.name)}")
    print(f"\nexample: NIC {fmt_rate(calib.testbed.nic_bandwidth)}, "
          f"disk {fmt_rate(calib.testbed.disk_read_bandwidth)}, "
          f"image {fmt_size(calib.image.size)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__
    from .runner import known_kinds, known_profiles

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Going Back and Forth' (HPDC 2011)",
        epilog=(
            "subcommands: deploy (one multideployment), snapshot "
            "(multisnapshotting), sweep (figure sweeps via the parallel "
            "runner), faults (deployment under injected crashes), p2p "
            "(cooperative chunk exchange), topo (hierarchical fabric + "
            "locality policies), churn (long-horizon multi-tenant "
            "SLOs), lineage (snapshot chains, compaction, restore-to-"
            "version), trace (Perfetto causal traces), bonnie (the §5.4 "
            "micro-benchmark), info (active calibration). "
            f"point kinds: {', '.join(known_kinds())}. "
            f"profiles: {', '.join(known_profiles())}."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_deploy = sub.add_parser("deploy", help="run one multideployment")
    _add_cluster_args(p_deploy)
    p_deploy.add_argument(
        "--approach", choices=["mirror", "qcow2-pvfs", "prepropagation"],
        default="mirror",
    )
    p_deploy.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="record a Perfetto trace (optional output path; "
             "default deploy-<approach>-n<N>.trace.json)",
    )
    p_deploy.set_defaults(func=cmd_deploy)

    p_snap = sub.add_parser("snapshot", help="deploy, dirty, multisnapshot")
    _add_cluster_args(p_snap)
    p_snap.add_argument("--approach", choices=["mirror", "qcow2-pvfs"], default="mirror")
    p_snap.add_argument("--diff-mib", type=int, default=15,
                        help="local modifications per VM, in MiB")
    p_snap.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="record a Perfetto trace (optional output path; "
             "default snapshot-<approach>-n<N>.trace.json)",
    )
    p_snap.set_defaults(func=cmd_snapshot)

    p_trace = sub.add_parser(
        "trace", help="trace one figure's scenario; write Perfetto JSON"
    )
    _add_cluster_args(p_trace, instances_flags=("-n", "--instances"))
    p_trace.add_argument(
        "--figure", choices=["fig4", "fig5"], default="fig4",
        help="fig4 = multideployment boots, fig5 = multisnapshotting",
    )
    p_trace.add_argument(
        "--approach", choices=["mirror", "qcow2-pvfs", "prepropagation"],
        default="mirror",
    )
    p_trace.add_argument("--diff-mib", type=int, default=15,
                         help="fig5: local modifications per VM, in MiB")
    p_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="output file (default <figure>-n<N>.trace.json)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_sweep = sub.add_parser(
        "sweep", help="run a figure's sweep through the parallel runner"
    )
    p_sweep.add_argument(
        "--figure", choices=sorted(SWEEP_FIGURES), default="fig4",
        help="which paper figure's sweep to run",
    )
    p_sweep.add_argument(
        "--profile", default="quick",
        help="benchmark profile (paper, quick, or a registered name)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = in-process sequential)",
    )
    p_sweep.add_argument(
        "--approach", action="append", default=[],
        choices=["mirror", "qcow2-pvfs", "prepropagation"],
        help="restrict to one approach (repeatable; default: the figure's set)",
    )
    p_sweep.add_argument(
        "--counts", type=lambda s: [int(v) for v in s.split(",")], default=None,
        metavar="N1,N2,...", help="instance counts (default: the profile's sweep)",
    )
    p_sweep.add_argument("--seed", type=int, default=1, help="experiment seed")
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    p_sweep.add_argument(
        "--refresh", action="store_true",
        help="recompute every point and refresh its cache entry",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: benchmarks/results/cache)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_faults = sub.add_parser(
        "faults", help="multideployment under an injected fault plan"
    )
    _add_cluster_args(p_faults)
    p_faults.add_argument(
        "--approach", choices=["mirror", "qcow2-pvfs", "prepropagation"],
        default="mirror",
    )
    p_faults.add_argument("--replication", type=int, default=2,
                          help="replicas per chunk (and metadata node)")
    p_faults.add_argument("--write-mode", choices=["parallel", "pipeline"],
                          default="parallel", help="replica write strategy")
    p_faults.add_argument("--crashes", type=int, default=2,
                          help="spare nodes to crash during the boot phase")
    p_faults.add_argument("--mttr", type=float, default=0.0,
                          help="seconds until a crashed node revives (0 = permanent)")
    p_faults.add_argument("--window", type=float, default=5.0,
                          help="crashes spread over the first WINDOW seconds")
    p_faults.add_argument("--plan", choices=["staggered", "random"],
                          default="staggered", help="fault plan generator")
    p_faults.add_argument("--faults-seed", type=int, default=None,
                          help="seed for --plan random (default: --seed)")
    p_faults.add_argument("--attempts", type=int, default=4,
                          help="client retry attempts per chunk/metadata fetch")
    p_faults.add_argument("--base-delay", type=float, default=0.25,
                          help="initial retry backoff in seconds")
    p_faults.add_argument("--rpc-timeout", type=float, default=2.0,
                          help="per-RPC deadline in seconds")
    p_faults.set_defaults(func=cmd_faults)

    p_p2p = sub.add_parser(
        "p2p", help="multideployment with cooperative peer chunk exchange"
    )
    _add_cluster_args(p_p2p)
    p_p2p.add_argument("--directory", choices=["announce", "rendezvous"],
                       default="announce", help="peer-location strategy")
    p_p2p.add_argument("--cache-mib", type=int, default=0,
                       help="per-node peer cache in MiB (0 = default 64)")
    p_p2p.add_argument("--fanout", type=int, default=2,
                       help="candidate peers tried per chunk before providers")
    p_p2p.add_argument("--smoke", action="store_true",
                       help="self-check: peer hits > 0, off-path determinism")
    p_p2p.set_defaults(func=cmd_p2p)

    p_topo = sub.add_parser(
        "topo",
        help="multideployment over a hierarchical (racked) fabric, "
             "locality-aware vs topology-blind",
    )
    p_topo.add_argument("--instances", type=int, default=0,
                        help="concurrent VMs (0 = the profile's first count)")
    p_topo.add_argument("--profile", default="topo-smoke",
                        help="benchmark profile (topo, topo-smoke, ...)")
    p_topo.add_argument("--racks", type=int, default=4,
                        help="racks the compute pool is split across")
    p_topo.add_argument("--oversubscription", type=float, default=4.0,
                        help="rack uplink = hosts_per_rack * NIC / this ratio")
    p_topo.add_argument("--directory", choices=["announce", "rendezvous"],
                        default="announce", help="peer-location strategy")
    p_topo.add_argument("--fanout", type=int, default=2,
                        help="candidate peers tried per chunk before providers")
    p_topo.add_argument("--no-p2p", action="store_true",
                        help="disable the cooperative chunk exchange")
    p_topo.add_argument("--replication", type=int, default=1,
                        help="replicas per chunk (locality run places them "
                             "rack-diverse)")
    p_topo.add_argument("--seed", type=int, default=1, help="experiment seed")
    p_topo.add_argument("--smoke", action="store_true",
                        help="self-check: determinism, cross-rack cut, "
                             "flat-fabric identity")
    p_topo.set_defaults(func=cmd_topo)

    p_churn = sub.add_parser(
        "churn", help="long-horizon multi-tenant churn run with steady-state SLOs"
    )
    p_churn.add_argument("--deploys", type=int, default=0,
                         help="deploy requests (0 = the profile's first count)")
    p_churn.add_argument("--profile", default="churn-smoke",
                         help="benchmark profile (churn, churn-smoke, ...)")
    p_churn.add_argument("--policy",
                         choices=["first-fit", "least-loaded", "locality"],
                         default="least-loaded", help="placement policy")
    p_churn.add_argument("--arrivals",
                         choices=["poisson", "diurnal", "bursty"],
                         default="poisson", help="arrival process")
    p_churn.add_argument("--rate", type=float, default=2.0,
                         help="mean arrival rate, deploys/second")
    p_churn.add_argument("--tenants", type=int, default=4,
                         help="tenants sharing the pool (one base image each)")
    p_churn.add_argument("--mean-lifetime", type=float, default=40.0,
                         help="mean VM lifetime in seconds")
    p_churn.add_argument("--gc-interval", type=float, default=60.0,
                         help="seconds between GC sweeps (0 disables GC)")
    p_churn.add_argument("--p2p", action="store_true",
                         help="enable the cooperative peer chunk exchange")
    p_churn.add_argument("--cache-mib", type=int, default=0,
                         help="per-node peer cache in MiB (0 = default 64)")
    p_churn.add_argument("--restore-fraction", type=float, default=0.0,
                         help="fraction of deploys that schedule a "
                              "post-teardown restore-to-version (0 = off)")
    p_churn.add_argument("--retain-snapshots", action="store_true",
                         help="pin snapshot chains past teardown so restores "
                              "never hit a retired chain")
    p_churn.add_argument("--seed", type=int, default=1, help="experiment seed")
    p_churn.add_argument("--smoke", action="store_true",
                         help="self-check: progress, GC reclaim, determinism")
    p_churn.set_defaults(func=cmd_churn)

    p_lineage = sub.add_parser(
        "lineage",
        help="snapshot chain + compaction + restore-to-version with dedup "
             "accounting",
    )
    p_lineage.add_argument("--depth", type=int, default=0,
                           help="chain depth / COMMITs (0 = the profile's "
                                "deepest sweep point)")
    p_lineage.add_argument("--profile", default="lineage",
                           help="benchmark profile (lineage, lineage-smoke, ...)")
    p_lineage.add_argument("--compact", action="store_true",
                           help="compact the chain before restoring")
    p_lineage.add_argument("--policy", choices=["flatten", "merge"],
                           default="flatten", help="compaction policy")
    p_lineage.add_argument("--depth-bound", type=int, default=4,
                           help="compacted-walk bound (anchor spacing)")
    p_lineage.add_argument("--replication", type=int, default=1,
                           help="replicas per chunk (dedup counts physical "
                                "bytes per replica)")
    p_lineage.add_argument("--seed", type=int, default=1, help="experiment seed")
    p_lineage.add_argument("--smoke", action="store_true",
                           help="self-check: conservation, chain walk, "
                                "determinism")
    p_lineage.set_defaults(func=cmd_lineage)

    p_bonnie = sub.add_parser("bonnie", help="run the §5.4 micro-benchmark")
    p_bonnie.add_argument("--image-mib", type=int, default=1024)
    p_bonnie.add_argument("--working-mib", type=int, default=256)
    p_bonnie.add_argument("--seed", type=int, default=1)
    p_bonnie.set_defaults(func=cmd_bonnie)

    p_info = sub.add_parser("info", help="print the active calibration")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
