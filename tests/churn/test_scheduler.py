"""Placement policies and bounded-queue admission control (pure unit)."""

import pytest

from repro.churn import DeployRequest, LocalityMap, Scheduler


def req(rid=0, tenant=0, at=0.0):
    return DeployRequest(req_id=rid, at=at, tenant=tenant)


class TestPolicies:
    def test_first_fit_packs_low_indices(self):
        s = Scheduler(3, policy="first-fit", slots_per_node=2)
        placed = [s.submit(req(i))[1] for i in range(6)]
        assert placed == [0, 0, 1, 1, 2, 2]

    def test_least_loaded_spreads(self):
        s = Scheduler(3, policy="least-loaded", slots_per_node=2)
        placed = [s.submit(req(i))[1] for i in range(6)]
        assert placed == [0, 1, 2, 0, 1, 2]

    def test_locality_prefers_cached_node(self):
        caches = {"n0": set(), "n1": {10, 11}, "n2": set()}
        loc = LocalityMap(["n0", "n1", "n2"], caches=caches,
                          tenant_keys={0: frozenset({10, 11, 12})})
        s = Scheduler(3, policy="locality", slots_per_node=1, locality=loc)
        state, node = s.submit(req(0, tenant=0))
        assert (state, node) == ("placed", 1)  # 2 cached chunks beat index 0

    def test_locality_affinity_fallback_without_p2p(self):
        loc = LocalityMap(["n0", "n1"], caches=None)
        loc.note_hosted(1, tenant=0)
        s = Scheduler(2, policy="locality", slots_per_node=2, locality=loc)
        assert s.submit(req(0, tenant=0)) == ("placed", 1)
        assert s.submit(req(1, tenant=1))[1] == 0  # no affinity: least loaded

    def test_locality_without_map_degrades_to_least_loaded(self):
        s = Scheduler(2, policy="locality", slots_per_node=2)
        assert [s.submit(req(i))[1] for i in range(4)] == [0, 1, 0, 1]


class TestAdmission:
    def test_queue_then_reject(self):
        s = Scheduler(1, policy="first-fit", slots_per_node=1, max_queue=2)
        assert s.submit(req(0)) == ("placed", 0)
        assert s.submit(req(1)) == ("queued", None)
        assert s.submit(req(2)) == ("queued", None)
        assert s.submit(req(3)) == ("rejected", None)
        assert s.rejected == 1
        assert s.admitted == 3
        assert s.busy_slots == 1 and s.total_slots == 1

    def test_release_drains_fifo(self):
        s = Scheduler(1, policy="first-fit", slots_per_node=1, max_queue=4)
        s.submit(req(0))
        s.submit(req(1))
        s.submit(req(2))
        placed = s.release(0)
        assert [(r.req_id, node) for r, node in placed] == [(1, 0)]
        assert [r.req_id for r in s.queue] == [2]

    def test_fifo_no_overtaking_while_queued(self):
        # capacity exists only via release(), which drains the queue first,
        # so a fresh submit may never overtake a waiting request
        s = Scheduler(2, policy="first-fit", slots_per_node=1, max_queue=4)
        s.submit(req(0))
        s.submit(req(1))
        s.submit(req(2))  # queued
        assert s.submit(req(3)) == ("queued", None)
        drained = s.release(0)
        assert [r.req_id for r, _ in drained] == [2]

    def test_cancel_queued_request(self):
        s = Scheduler(1, policy="first-fit", slots_per_node=1, max_queue=4)
        s.submit(req(0))
        s.submit(req(1))
        assert s.cancel(1) is True
        assert s.cancel(99) is False
        assert not s.queue

    def test_release_idle_node_raises(self):
        s = Scheduler(2, policy="first-fit")
        with pytest.raises(ValueError, match="release on idle node"):
            s.release(1)

    def test_zero_queue_rejects_at_capacity(self):
        s = Scheduler(1, policy="first-fit", slots_per_node=1, max_queue=0)
        s.submit(req(0))
        assert s.submit(req(1)) == ("rejected", None)
