"""Tests for the flow-level network model."""

import pytest

from repro.common.units import MB
from repro.simkit.core import Environment
from repro.simkit.network import FlowNetwork
from repro.simkit.trace import Metrics


def make_net(fairness="equal-share", n_hosts=4, bw=100 * MB, latency=0.0001):
    env = Environment()
    metrics = Metrics()
    net = FlowNetwork(env, metrics=metrics, latency=latency, fairness=fairness)
    nics = [net.add_nic(f"h{i}", bw) for i in range(n_hosts)]
    return env, net, nics, metrics


@pytest.mark.parametrize("fairness", ["equal-share", "maxmin"])
class TestBothModes:
    def test_single_flow_full_rate(self, fairness):
        env, net, nics, _ = make_net(fairness)
        done = net.transfer(nics[0], nics[1], 100 * MB)
        env.run(done)
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_two_flows_share_uplink(self, fairness):
        env, net, nics, _ = make_net(fairness)
        d1 = net.transfer(nics[0], nics[1], 50 * MB)
        d2 = net.transfer(nics[0], nics[2], 50 * MB)
        env.run(env.all_of([d1, d2]))
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_two_flows_share_downlink(self, fairness):
        env, net, nics, _ = make_net(fairness)
        d1 = net.transfer(nics[1], nics[0], 50 * MB)
        d2 = net.transfer(nics[2], nics[0], 50 * MB)
        env.run(env.all_of([d1, d2]))
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_disjoint_flows_independent(self, fairness):
        env, net, nics, _ = make_net(fairness)
        d1 = net.transfer(nics[0], nics[1], 100 * MB)
        d2 = net.transfer(nics[2], nics[3], 100 * MB)
        env.run(env.all_of([d1, d2]))
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_departure_speeds_up_survivor(self, fairness):
        env, net, nics, _ = make_net(fairness)
        # Flow A: 100 MB, flow B: 50 MB, same uplink. B finishes at t=1
        # (rate 50), then A runs at 100: total = 1 + 0.5 = 1.5.
        dA = net.transfer(nics[0], nics[1], 100 * MB)
        dB = net.transfer(nics[0], nics[2], 50 * MB)
        env.run(dB)
        assert env.now == pytest.approx(1.0, rel=1e-3)
        env.run(dA)
        assert env.now == pytest.approx(1.5, rel=1e-3)

    def test_arrival_slows_down_existing(self, fairness):
        env, net, nics, _ = make_net(fairness)
        dA = net.transfer(nics[0], nics[1], 100 * MB)

        out = {}

        def second():
            yield env.timeout(0.5)  # A has moved 50 MB alone
            dB = net.transfer(nics[0], nics[2], 25 * MB)
            yield dB
            out["B"] = env.now

        env.process(second())
        env.run(dA)
        # After t=0.5 both run at 50 MB/s: B needs 0.5s -> t=1.0;
        # A's remaining 50MB: 25MB shared (0.5s) + 25MB alone (0.25s) -> t=1.25
        assert out["B"] == pytest.approx(1.0, rel=1e-3)
        assert env.now == pytest.approx(1.25, rel=1e-3)

    def test_traffic_accounted(self, fairness):
        env, net, nics, metrics = make_net(fairness)
        done = net.transfer(nics[0], nics[1], 10 * MB, kind="chunk")
        env.run(done)
        assert metrics.traffic["chunk"] == 10 * MB

    def test_loopback_is_free(self, fairness):
        env, net, nics, metrics = make_net(fairness)
        done = net.transfer(nics[0], nics[0], 500 * MB)
        env.run(done)
        assert env.now == pytest.approx(0.0, abs=1e-9)
        assert metrics.total_traffic() == 0

    def test_small_transfer_becomes_message(self, fairness):
        env, net, nics, metrics = make_net(fairness)
        done = net.transfer(nics[0], nics[1], 100)  # below threshold
        env.run(done)
        assert net.active_flow_count == 0
        assert metrics.total_traffic() > 100  # includes header


class TestMaxMinSpecifics:
    def test_redistribution(self):
        """Max-min redistributes share left by a bottlenecked flow.

        h0 sends to h1 and to h2; h3 also sends to h1. Flow h0->h1 is
        limited to 50 at h1's downlink (shared with h3->h1), so h0->h2 can
        use the remaining 50 of h0's uplink... wait, both h0 flows split the
        uplink at 50 anyway. Use asymmetric capacities instead.
        """
        env = Environment()
        net = FlowNetwork(env, fairness="maxmin", latency=0.0)
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 30 * MB)
        c = net.add_nic("c", 100 * MB)
        # a->b limited to 30 by b's downlink; a->c should then get 70.
        d1 = net.transfer(a, b, 30 * MB)
        d2 = net.transfer(a, c, 70 * MB)
        env.run(env.all_of([d1, d2]))
        assert env.now == pytest.approx(1.0, rel=1e-3)

    def test_equal_share_underestimates_here(self):
        """Same topology in equal-share mode: a->c only gets 50 (no redistribution)."""
        env = Environment()
        net = FlowNetwork(env, fairness="equal-share", latency=0.0)
        a = net.add_nic("a", 100 * MB)
        b = net.add_nic("b", 30 * MB)
        c = net.add_nic("c", 100 * MB)
        d2 = net.transfer(a, c, 70 * MB)
        d1 = net.transfer(a, b, 30 * MB)
        env.run(d1)
        t_b = env.now
        env.run(d2)
        assert t_b == pytest.approx(1.0, rel=1e-3)
        # a->c ran at 50 while sharing, then 100 alone: strictly later than 1.0
        assert env.now > 1.0


class TestMessages:
    def test_message_pays_latency(self):
        env, net, nics, _ = make_net(latency=0.01)
        done = net.message(nics[0], nics[1], 100)
        env.run(done)
        assert env.now >= 0.01

    def test_messages_do_not_interact(self):
        env, net, nics, _ = make_net(latency=0.01)
        d1 = net.message(nics[0], nics[1], 100)
        d2 = net.message(nics[0], nics[1], 100)
        env.run(env.all_of([d1, d2]))
        # both complete at ~latency, not serialized
        assert env.now < 0.02

    def test_duplicate_nic_rejected(self):
        env = Environment()
        net = FlowNetwork(env)
        net.add_nic("x", 1.0)
        with pytest.raises(ValueError):
            net.add_nic("x", 1.0)

    def test_unknown_fairness_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(Environment(), fairness="weighted")


class TestConservation:
    def test_bytes_conserved_random_workload(self):
        """Sum of transfer sizes equals the accounted bulk traffic."""
        import numpy as np

        rng = np.random.default_rng(5)
        env, net, nics, metrics = make_net(n_hosts=6)
        sizes = []

        def traffic_gen():
            for _ in range(40):
                yield env.timeout(float(rng.uniform(0, 0.2)))
                i, j = rng.choice(6, size=2, replace=False)
                size = int(rng.integers(1, 30)) * MB
                sizes.append(size)
                net.transfer(nics[i], nics[j], size)

        env.process(traffic_gen())
        env.run()
        assert metrics.traffic["bulk"] == sum(sizes)

    def test_completion_order_respects_backlog(self):
        """A later small flow on a busy link cannot finish before its share allows."""
        env, net, nics, _ = make_net()
        big = net.transfer(nics[0], nics[1], 200 * MB)
        t = {}

        def small_later():
            yield env.timeout(1.0)
            small = net.transfer(nics[0], nics[2], 50 * MB)
            yield small
            t["small"] = env.now

        env.process(small_later())
        env.run(env.all_of([big]))
        # small: starts at 1.0 with share 50 -> 1s -> finishes ~2.0
        assert t["small"] == pytest.approx(2.0, rel=1e-2)
