"""Failure-injection tests: dead providers, interrupted boots, lost chunks."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, deploy
from repro.common.errors import (
    ChunkNotFoundError,
    InterruptedError_,
    ProviderUnavailableError,
)
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.core import mount
from repro.simkit import rpc
from repro.simkit.host import Fabric
from repro.vmsim import boot_trace, make_image
from repro.vmsim.backends import MirrorBackend
from repro.vmsim.hypervisor import VMInstance

CHUNK = 4 * KiB


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


class TestProviderFailureDuringDeployment:
    def _setup(self, replication):
        fab = Fabric(seed=51)
        hosts = [fab.add_host(f"node{i}") for i in range(6)]
        manager = fab.add_host("manager")
        dep = BlobSeerDeployment(
            fab, data_hosts=hosts[:4], meta_hosts=[manager], vmanager_host=manager
        )
        data = pattern(16 * CHUNK)
        rec = dep.seed_blob(Payload.from_bytes(data), CHUNK, replication=replication)
        return fab, dep, hosts, rec, data

    def test_boot_survives_provider_loss_with_replication(self):
        fab, dep, hosts, rec, data = self._setup(replication=2)
        rpc.host_down(hosts[1])

        def scenario():
            h = yield from mount(hosts[5], dep, rec.blob_id, rec.version)
            p = yield from h.read(0, 16 * CHUNK)
            return p

        got = fab.run(fab.env.process(scenario()))
        assert got.to_bytes() == data

    def test_boot_fails_without_replication(self):
        fab, dep, hosts, rec, data = self._setup(replication=1)
        rpc.host_down(hosts[1])

        def scenario():
            h = yield from mount(hosts[5], dep, rec.blob_id, rec.version)
            yield from h.read(0, 16 * CHUNK)

        with pytest.raises(ProviderUnavailableError):
            fab.run(fab.env.process(scenario()))

    def test_recovered_provider_serves_again(self):
        fab, dep, hosts, rec, data = self._setup(replication=1)
        rpc.host_down(hosts[1])
        rpc.host_up(hosts[1])

        def scenario():
            h = yield from mount(hosts[5], dep, rec.blob_id, rec.version)
            p = yield from h.read(0, 16 * CHUNK)
            return p

        assert fab.run(fab.env.process(scenario())).to_bytes() == data


class TestInterruptedBoot:
    def test_premature_termination_leaves_consistent_state(self):
        """§2.3: the shutdown phase 'is completely missing if the VM was
        terminated prematurely' — the mirror must survive an interrupt."""
        calib = Calibration(
            image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=8 * MiB)
        )
        cloud = build_cloud(4, seed=61, calib=calib)
        image = make_image(64 * MiB, 8 * MiB, n_regions=12)
        res = deploy(cloud, image, 1, "mirror", run_boot=False)
        vm = res.vms[0]
        trace = boot_trace(image, calib.boot, cloud.fabric.rng.get("t", 0))
        proc = cloud.env.process(vm.boot(trace), name="doomed-boot")

        def killer():
            yield cloud.env.timeout(2.0)  # mid-boot (hardware failure)
            proc.interrupt("hardware failure")

        cloud.env.process(killer())
        with pytest.raises(InterruptedError_):
            cloud.run(proc)
        assert vm.boot_time is None  # never finished
        # the mirror's bookkeeping is still sound: a fresh read works
        handle = vm.backend.handle

        def post_mortem():
            p = yield from handle.read(0, 4096)
            return p

        got = cloud.run(cloud.env.process(post_mortem()))
        assert got.size == 4096

    def test_interrupt_does_not_corrupt_repository(self):
        calib = Calibration(
            image=ImageSpec(size=16 * MiB, chunk_size=256 * KiB, boot_touched_bytes=2 * MiB)
        )
        cloud = build_cloud(4, seed=62, calib=calib)
        image = make_image(16 * MiB, 2 * MiB, n_regions=6)
        res = deploy(cloud, image, 1, "mirror", run_boot=False)
        vm = res.vms[0]
        trace = boot_trace(image, calib.boot, cloud.fabric.rng.get("t", 0))
        proc = cloud.env.process(vm.boot(trace))

        def killer():
            yield cloud.env.timeout(1.0)
            proc.interrupt("power loss")

        cloud.env.process(killer())
        with pytest.raises(InterruptedError_):
            cloud.run(proc)
        # repository unchanged: another node deploys the same image fine
        backend = MirrorBackend(
            cloud.compute[2], cloud.blobseer,
            res.vms[0].backend.blob_id, res.vms[0].backend.version,
        )

        def redeploy():
            yield from backend.open()
            p = yield from backend.read(0, 1024)
            return p

        assert cloud.run(cloud.env.process(redeploy())).size == 1024


class TestLostChunk:
    def test_missing_chunk_detected(self):
        """A provider losing a chunk (disk corruption) raises, not zero-fills."""
        fab = Fabric(seed=71)
        hosts = [fab.add_host(f"n{i}") for i in range(3)]
        manager = fab.add_host("m")
        dep = BlobSeerDeployment(fab, hosts, [manager], manager)
        rec = dep.seed_blob(Payload.from_bytes(pattern(6 * CHUNK)), CHUNK)
        # corrupt: drop a chunk from its provider's store
        victim = dep.data_services[hosts[0].name]
        lost_key = next(iter(victim.store.keys()))
        victim.store.discard(lost_key)
        client = dep.client(hosts[2])

        def scenario():
            yield from client.read(rec.blob_id, rec.version, 0, 6 * CHUNK)

        with pytest.raises(ChunkNotFoundError):
            fab.run(fab.env.process(scenario()))
