"""Result series, speedups, and paper-style reports."""

from .plot import ascii_chart
from .report import check_shape, render_bars, render_figure
from .series import Figure, Series, collect, from_points, speedup

__all__ = [
    "Figure",
    "Series",
    "ascii_chart",
    "check_shape",
    "collect",
    "from_points",
    "render_bars",
    "render_figure",
    "speedup",
]
