"""Exact per-version sharing accounting over the segment-tree metadata.

Shadowing (and content-addressed dedup) make repository footprint a shared
resource: a chunk written for one snapshot may be referenced by dozens of
later versions and clones. This module walks every *published* snapshot's
segment tree and computes, per version:

* **exclusive bytes** — physical bytes of chunks only this version
  references (what a GC sweep would reclaim if exactly this version were
  unpublished — so ``reclaimable-if-deleted`` equals it);
* **shared bytes** — physical bytes of this version's chunks that at least
  one other published version also references.

"Physical" counts every replica (``len(ref.providers)`` copies per chunk),
matching :meth:`~repro.blobseer.service.BlobSeerDeployment.stored_bytes`.
The accounting **conserves bytes by construction**: the sum of all
per-version exclusive bytes plus the shared pool (each shared chunk counted
once) equals the live repository footprint — and after a
:func:`~repro.blobseer.gc.collect_garbage` sweep the live footprint equals
the providers' stored bytes exactly, which is the benchmark's conservation
gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Set, Tuple

from ..blobseer.metadata import reachable_nodes

if TYPE_CHECKING:  # pragma: no cover
    from ..blobseer.service import BlobSeerDeployment


@dataclass(frozen=True)
class VersionSharing:
    """One published snapshot's footprint attribution."""

    blob_id: int
    version: int
    #: distinct chunks this version references
    chunks: int
    #: physical bytes only this version references (== reclaimable-if-deleted)
    exclusive_bytes: int
    #: physical bytes shared with at least one other published version
    shared_bytes: int

    @property
    def reclaimable_bytes(self) -> int:
        """Bytes a GC sweep frees if exactly this version is unpublished."""
        return self.exclusive_bytes


@dataclass(frozen=True)
class DedupReport:
    """Whole-repository sharing accounting at one instant."""

    per_version: Tuple[VersionSharing, ...]
    #: sum of every version's exclusive bytes
    total_exclusive: int
    #: bytes of the shared pool, each shared chunk counted exactly once
    total_shared: int
    #: live physical footprint: every chunk reachable from a published
    #: snapshot, every replica counted
    live_bytes: int
    #: providers' stored bytes at report time (includes garbage a sweep
    #: has not reclaimed yet; equals ``live_bytes`` right after GC)
    stored_bytes: int

    def conserves(self) -> bool:
        """Exclusive + shared must add up to the live footprint, always."""
        return self.total_exclusive + self.total_shared == self.live_bytes

    def matches_footprint(self) -> bool:
        """Whether the accounted live bytes equal the physical repository.

        True only when no unreclaimed garbage exists — i.e. immediately
        after a :func:`~repro.blobseer.gc.collect_garbage` sweep.
        """
        return self.live_bytes == self.stored_bytes

    def sharing_ratio(self) -> float:
        """Fraction of the live footprint that is shared between versions."""
        return self.total_shared / self.live_bytes if self.live_bytes else 0.0


def dedup_accounting(deployment: "BlobSeerDeployment") -> DedupReport:
    """Walk every published snapshot's tree and attribute the footprint.

    Pure analysis over registry + central metadata state: no simulated time,
    no RPCs, no RNG — safe to call from benchmarks and engines without
    perturbing any timeline.
    """
    registry = deployment.registry
    metadata = deployment.metadata

    # distinct chunk keys per published version, and each key's physical size
    per_version_keys: Dict[Tuple[int, int], Set[int]] = {}
    key_bytes: Dict[int, int] = {}
    for rec in registry.live_records():
        keys: Set[int] = set()
        for nid in reachable_nodes(metadata, rec.root):
            ref = metadata.get(nid).ref
            if ref is not None:
                keys.add(ref.key)
                key_bytes.setdefault(ref.key, ref.size * len(ref.providers))
        per_version_keys[(rec.blob_id, rec.version)] = keys

    refcount: Dict[int, int] = {}
    for keys in per_version_keys.values():
        for key in keys:
            refcount[key] = refcount.get(key, 0) + 1

    rows = []
    for (blob_id, version), keys in sorted(per_version_keys.items()):
        exclusive = sum(key_bytes[k] for k in keys if refcount[k] == 1)
        shared = sum(key_bytes[k] for k in keys if refcount[k] > 1)
        rows.append(VersionSharing(
            blob_id=blob_id, version=version, chunks=len(keys),
            exclusive_bytes=exclusive, shared_bytes=shared,
        ))

    total_exclusive = sum(r.exclusive_bytes for r in rows)
    total_shared = sum(b for k, b in key_bytes.items() if refcount[k] > 1)
    live_bytes = sum(key_bytes.values())
    return DedupReport(
        per_version=tuple(rows),
        total_exclusive=total_exclusive,
        total_shared=total_shared,
        live_bytes=live_bytes,
        stored_bytes=deployment.stored_bytes(),
    )
