"""End-to-end tests of the BlobSeer deployment on a simulated cluster."""

import pytest

from repro.common.errors import (
    ChunkNotFoundError,
    ProviderUnavailableError,
    StorageError,
    UnknownBlobError,
    UnknownVersionError,
)
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.simkit import rpc
from repro.simkit.host import Fabric
from repro.blobseer import BlobSeerDeployment

CHUNK = 4 * KiB


def make_deployment(n_nodes=4, seed=7, meta_on_manager=False, **kwargs):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"node{i}") for i in range(n_nodes)]
    manager = fab.add_host("manager")
    meta_hosts = [manager] if meta_on_manager else hosts
    dep = BlobSeerDeployment(
        fab, data_hosts=hosts, meta_hosts=meta_hosts, vmanager_host=manager, **kwargs
    )
    return fab, dep, hosts, manager


def run(fab, gen):
    return fab.run(fab.env.process(gen))


def pattern(n, seed=1):
    """Deterministic non-trivial bytes."""
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


class TestCreateUploadRead:
    def test_upload_read_roundtrip(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(3 * CHUNK + 123)  # non-chunk-aligned size
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            rec = yield from client.upload(blob, Payload.from_bytes(data))
            got = yield from client.read(blob, rec.version, 0, len(data))
            return rec, got

        rec, got = run(fab, scenario())
        assert rec.version == 1
        assert got.to_bytes() == data

    def test_partial_unaligned_reads(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(4 * CHUNK)
        client = dep.client(hosts[1])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob, Payload.from_bytes(data))
            out = []
            for off, ln in [(0, 1), (CHUNK - 1, 2), (CHUNK + 7, 3 * CHUNK - 100), (len(data) - 1, 1)]:
                p = yield from client.read(blob, 1, off, ln)
                out.append((off, ln, p.to_bytes()))
            return out

        for off, ln, got in run(fab, scenario()):
            assert got == pattern(4 * CHUNK)[off : off + ln]

    def test_read_empty_version_zero_is_zeros(self):
        fab, dep, hosts, _ = make_deployment()
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(2 * CHUNK, CHUNK)
            p = yield from client.read(blob, 0, 10, 100)
            return p

        assert run(fab, scenario()).to_bytes() == b"\x00" * 100

    def test_read_beyond_size_rejected(self):
        fab, dep, hosts, _ = make_deployment()
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(CHUNK, CHUNK)
            yield from client.read(blob, 0, 0, CHUNK + 1)

        with pytest.raises(StorageError):
            run(fab, scenario())

    def test_unknown_blob_and_version(self):
        fab, dep, hosts, _ = make_deployment()
        client = dep.client(hosts[0])

        def bad_blob():
            yield from client.read(999, 0, 0, 1)

        with pytest.raises(UnknownBlobError):
            run(fab, bad_blob())

        def bad_version():
            blob = yield from client.create(CHUNK, CHUNK)
            yield from client.read(blob, 5, 0, 1)

        with pytest.raises(UnknownVersionError):
            run(fab, bad_version())

    def test_chunks_striped_across_providers(self):
        fab, dep, hosts, _ = make_deployment(n_nodes=4)
        data = pattern(8 * CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob, Payload.from_bytes(data))

        run(fab, scenario())
        counts = [len(dep.provider(h.name).store) for h in hosts]
        assert counts == [2, 2, 2, 2]  # round-robin over 4 providers


class TestVersioning:
    def test_commit_chain_old_versions_stable(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(4 * CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob, Payload.from_bytes(data))
            mod1 = Payload.from_bytes(pattern(CHUNK, seed=9))
            rec2 = yield from client.write_chunks(blob, {1: mod1})
            mod2 = Payload.from_bytes(pattern(CHUNK, seed=13))
            rec3 = yield from client.write_chunks(blob, {1: mod2, 3: mod1})
            v1 = yield from client.read(blob, 1, 0, len(data))
            v2 = yield from client.read(blob, 2, 0, len(data))
            v3 = yield from client.read(blob, 3, 0, len(data))
            return rec2, rec3, v1, v2, v3

        rec2, rec3, v1, v2, v3 = run(fab, scenario())
        assert (rec2.version, rec3.version) == (2, 3)
        ref = bytearray(pattern(4 * CHUNK))
        assert v1.to_bytes() == bytes(ref)
        ref2 = bytearray(ref)
        ref2[CHUNK : 2 * CHUNK] = pattern(CHUNK, seed=9)
        assert v2.to_bytes() == bytes(ref2)
        ref3 = bytearray(ref2)
        ref3[CHUNK : 2 * CHUNK] = pattern(CHUNK, seed=13)
        ref3[3 * CHUNK : 4 * CHUNK] = pattern(CHUNK, seed=9)
        assert v3.to_bytes() == bytes(ref3)

    def test_storage_grows_by_diff_only(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(8 * CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob, Payload.from_bytes(data))
            base = dep.stored_bytes()
            yield from client.write_chunks(blob, {2: Payload.from_bytes(pattern(CHUNK, 5))})
            return base

        base = run(fab, scenario())
        assert base == 8 * CHUNK
        assert dep.stored_bytes() == 9 * CHUNK  # one new chunk, not a new image

    def test_wrong_chunk_size_rejected(self):
        fab, dep, hosts, _ = make_deployment()
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(4 * CHUNK, CHUNK)
            yield from client.write_chunks(blob, {0: Payload.from_bytes(b"short")})

        with pytest.raises(StorageError):
            run(fab, scenario())

    def test_clone_and_commit_independent_lineages(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(4 * CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            blob_a = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob_a, Payload.from_bytes(data))
            clone_rec = yield from client.clone(blob_a, 1)
            blob_b = clone_rec.blob_id
            # modify the clone twice (Fig. 3(c))
            yield from client.write_chunks(blob_b, {1: Payload.from_bytes(pattern(CHUNK, 2))})
            yield from client.write_chunks(blob_b, {3: Payload.from_bytes(pattern(CHUNK, 3))})
            a_latest = yield from client.read(blob_a, None, 0, len(data))
            b_v1 = yield from client.read(blob_b, 1, 0, len(data))
            b_latest = yield from client.read(blob_b, None, 0, len(data))
            return blob_a, blob_b, a_latest, b_v1, b_latest

        blob_a, blob_b, a_latest, b_v1, b_latest = run(fab, scenario())
        assert blob_b != blob_a
        assert a_latest.to_bytes() == data  # original untouched
        assert b_v1.to_bytes() == data  # clone's snapshot 1 = source content
        expected = bytearray(data)
        expected[CHUNK : 2 * CHUNK] = pattern(CHUNK, 2)
        expected[3 * CHUNK : 4 * CHUNK] = pattern(CHUNK, 3)
        assert b_latest.to_bytes() == bytes(expected)

    def test_clone_costs_no_chunk_storage(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(8 * CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(len(data), CHUNK)
            yield from client.upload(blob, Payload.from_bytes(data))
            before = dep.stored_bytes()
            yield from client.clone(blob, 1)
            return before

        before = run(fab, scenario())
        assert dep.stored_bytes() == before


class TestSeedBlob:
    def test_seed_matches_upload_semantics(self):
        fab, dep, hosts, _ = make_deployment()
        data = pattern(5 * CHUNK + 17)
        rec = dep.seed_blob(Payload.from_bytes(data), CHUNK)
        assert fab.env.now == 0.0  # setup is instantaneous
        client = dep.client(hosts[2])

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 0, len(data))
            return got

        assert run(fab, scenario()).to_bytes() == data

    def test_seed_opaque_blob_identity(self):
        fab, dep, hosts, _ = make_deployment()
        img = Payload.opaque("debian", 16 * CHUNK)
        rec = dep.seed_blob(img, CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 3 * CHUNK + 5, 2 * CHUNK)
            return got

        got = run(fab, scenario())
        assert got == img.slice(3 * CHUNK + 5, 5 * CHUNK + 5)


class TestReplicationAndFailure:
    def test_replicated_chunks_on_distinct_providers(self):
        fab, dep, hosts, _ = make_deployment(n_nodes=4)
        data = pattern(4 * CHUNK)
        rec = dep.seed_blob(Payload.from_bytes(data), CHUNK, replication=2)
        refs, _ = __import__("repro.blobseer.metadata", fromlist=["lookup_range"]).lookup_range(
            dep.metadata, rec.root, 0, 4
        )
        for ref in refs.values():
            assert len(set(ref.providers)) == 2

    def test_read_fails_over_to_replica(self):
        fab, dep, hosts, _ = make_deployment(n_nodes=4, meta_on_manager=True)
        data = pattern(4 * CHUNK)
        rec = dep.seed_blob(Payload.from_bytes(data), CHUNK, replication=2)
        client = dep.client(hosts[3])
        rpc.host_down(hosts[0])

        def scenario():
            got = yield from client.read(rec.blob_id, rec.version, 0, len(data))
            return got

        assert run(fab, scenario()).to_bytes() == data

    def test_read_without_replica_fails_on_dead_provider(self):
        fab, dep, hosts, _ = make_deployment(n_nodes=4, meta_on_manager=True)
        data = pattern(4 * CHUNK)
        rec = dep.seed_blob(Payload.from_bytes(data), CHUNK, replication=1)
        client = dep.client(hosts[3])
        rpc.host_down(hosts[0])

        def scenario():
            yield from client.read(rec.blob_id, rec.version, 0, len(data))

        with pytest.raises(ProviderUnavailableError):
            run(fab, scenario())

    def test_replication_bounded_by_providers(self):
        fab, dep, hosts, _ = make_deployment(n_nodes=2)
        with pytest.raises(StorageError):
            dep.seed_blob(Payload.zeros(CHUNK), CHUNK, replication=3)


class TestTimingSanity:
    def test_read_takes_positive_time_and_second_read_is_cached_at_provider(self):
        fab, dep, hosts, _ = make_deployment(cache_chunks=True)
        rec = dep.seed_blob(Payload.opaque("img", 64 * CHUNK), CHUNK)
        c1 = dep.client(hosts[0])

        def scenario():
            t0 = fab.env.now
            yield from c1.read(rec.blob_id, rec.version, 0, 64 * CHUNK)
            t_cold = fab.env.now - t0
            t0 = fab.env.now
            yield from c1.read(rec.blob_id, rec.version, 0, 64 * CHUNK)
            t_warm = fab.env.now - t0
            return t_cold, t_warm

        t_cold, t_warm = run(fab, scenario())
        assert t_cold > t_warm > 0.0
        # cold pays provider disk reads; warm is network-only
        assert t_cold > t_warm * 1.5

    def test_async_ack_faster_than_sync(self):
        def commit_time(async_ack):
            fab, dep, hosts, _ = make_deployment(async_ack=async_ack)
            rec = dep.seed_blob(Payload.opaque("img", 16 * CHUNK), CHUNK)
            client = dep.client(hosts[0])

            def scenario():
                updates = {i: Payload.opaque("mod", CHUNK) for i in range(8)}
                t0 = fab.env.now
                yield from client.write_chunks(rec.blob_id, updates)
                return fab.env.now - t0

            return run(fab, scenario())

        assert commit_time(True) < commit_time(False)

    def test_deterministic_timeline(self):
        def run_once():
            fab, dep, hosts, _ = make_deployment(seed=42)
            rec = dep.seed_blob(Payload.opaque("img", 32 * CHUNK), CHUNK)
            clients = [dep.client(h) for h in hosts]

            def reader(c):
                yield from c.read(rec.blob_id, rec.version, 0, 32 * CHUNK)

            procs = [fab.env.process(reader(c)) for c in clients]
            fab.run(fab.env.all_of(procs))
            return fab.env.now, fab.metrics.total_traffic()

        assert run_once() == run_once()
