"""Tests for the three image backends behind one interface."""

import pytest

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud, seed_image
from repro.common.errors import StorageError
from repro.common.payload import Payload
from repro.common.units import KiB, MiB
from repro.vmsim.backends import LocalRawBackend, MirrorBackend, Qcow2PvfsBackend
from repro.vmsim.image import make_image

CHUNK = 64 * KiB
IMG = 4 * MiB


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


@pytest.fixture
def cloud_and_image():
    calib = Calibration(
        image=ImageSpec(size=IMG, chunk_size=CHUNK, boot_touched_bytes=MiB)
    )
    cloud = build_cloud(4, seed=5, calib=calib)
    data = pattern(IMG)
    image = make_image(IMG, MiB, n_regions=8, payload=Payload.from_bytes(data))
    idents = seed_image(cloud, image)
    return cloud, image, idents, data


def run(cloud, gen):
    return cloud.run(cloud.env.process(gen))


def make_backend(cloud, idents, kind, node_idx=0):
    node = cloud.compute[node_idx]
    if kind == "local":
        f = node.create_file("/local/image.raw", IMG)
        f.write(0, cloud.nfs._files[idents["nfs"]].read(0, IMG))
        return LocalRawBackend(node, "/local/image.raw", cloud.calib.fuse)
    if kind == "qcow2":
        return Qcow2PvfsBackend(node, cloud.pvfs, idents["pvfs"], cloud.calib.fuse, cluster_size=CHUNK)
    rec = idents["blobseer"]
    return MirrorBackend(node, cloud.blobseer, rec.blob_id, rec.version, cloud.calib.fuse)


@pytest.mark.parametrize("kind", ["local", "qcow2", "mirror"])
class TestCommonBehaviour:
    def test_read_matches_image(self, cloud_and_image, kind):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, kind)

        def scenario():
            yield from backend.open()
            p = yield from backend.read(1000, 5000)
            return p

        assert run(cloud, scenario()).to_bytes() == data[1000:6000]

    def test_read_your_writes(self, cloud_and_image, kind):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, kind)

        def scenario():
            yield from backend.open()
            yield from backend.write(CHUNK + 3, Payload.from_bytes(b"WRITTEN"))
            p = yield from backend.read(CHUNK, 16)
            yield from backend.close()
            return p

        got = run(cloud, scenario())
        expected = bytearray(data[CHUNK : CHUNK + 16])
        expected[3:10] = b"WRITTEN"
        assert got.to_bytes() == bytes(expected)


class TestApproachSpecific:
    def test_local_backend_no_network(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "local")
        before = cloud.metrics.total_traffic()

        def scenario():
            yield from backend.open()
            yield from backend.read(0, IMG)
            yield from backend.write(0, Payload.from_bytes(b"x" * 1000))

        run(cloud, scenario())
        assert cloud.metrics.total_traffic() == before

    def test_local_backend_cannot_snapshot(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "local")
        with pytest.raises(StorageError):
            next(backend.snapshot())

    def test_qcow2_rereads_backing_mirror_does_not(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        q = make_backend(cloud, idents, "qcow2", node_idx=0)
        m = make_backend(cloud, idents, "mirror", node_idx=1)

        def reads(backend):
            yield from backend.open()
            t0 = cloud.env.now
            yield from backend.read(0, CHUNK)
            yield from backend.read(0, CHUNK)  # identical re-read
            return cloud.env.now - t0

        run(cloud, reads(q))
        q_pvfs_reads = cloud.metrics.counters.get("pvfs-read", 0)
        run(cloud, reads(m))
        # qcow2 went remote twice; the mirror fetched once then served locally
        assert q_pvfs_reads >= 2
        assert cloud.metrics.counters["mirror-remote-read"] == 1

    def test_qcow2_snapshot_copies_file_to_pvfs(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "qcow2")

        def scenario():
            yield from backend.open()
            yield from backend.write(0, Payload.from_bytes(pattern(2 * CHUNK, 9)))
            snap = yield from backend.snapshot()
            return snap

        snap = run(cloud, scenario())
        assert snap.bytes_moved == backend.image.file_bytes
        assert snap.ident.endswith(".qcow2")
        # the snapshot file exists in PVFS with the right size
        got = cloud.pvfs.peek(snap.ident, 0, snap.bytes_moved)
        assert got.size == snap.bytes_moved

    def test_mirror_snapshot_clone_then_commit(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "mirror")

        def scenario():
            yield from backend.open()
            yield from backend.write(0, Payload.from_bytes(b"dirty"))
            s1 = yield from backend.snapshot()
            yield from backend.write(CHUNK, Payload.from_bytes(b"more"))
            s2 = yield from backend.snapshot()
            return s1, s2

        s1, s2 = run(cloud, scenario())
        assert cloud.metrics.counters["ioctl-clone"] == 1  # cloned once only
        assert cloud.metrics.counters["ioctl-commit"] == 2
        blob1 = s1.ident.split("@")[0]
        blob2 = s2.ident.split("@")[0]
        assert blob1 == blob2  # same clone lineage, ordered versions

    def test_mirror_snapshot_readable_as_standalone_image(self, cloud_and_image):
        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "mirror")

        def scenario():
            yield from backend.open()
            yield from backend.write(100, Payload.from_bytes(b"SNAPPED"))
            snap = yield from backend.snapshot()
            blob, version = snap.ident[4:].split("@v")
            reader = cloud.blobseer.client(cloud.compute[3])
            img = yield from reader.read(int(blob), int(version), 0, IMG)
            return img

        got = run(cloud, scenario())
        expected = bytearray(data)
        expected[100:107] = b"SNAPPED"
        assert got.to_bytes() == bytes(expected)

    def test_qcow2_serialize_roundtrip_on_other_node(self, cloud_and_image):
        """A copied qcow2 file reopens correctly against the same backing."""
        from repro.baselines.qcow2 import Qcow2Image

        cloud, image, idents, data = cloud_and_image
        backend = make_backend(cloud, idents, "qcow2")

        def scenario():
            yield from backend.open()
            yield from backend.write(10, Payload.from_bytes(b"DELTA"))

        run(cloud, scenario())
        file_payload, index = backend.image.serialize()
        reopened = Qcow2Image.deserialize(
            file_payload, index, IMG,
            backing_read=lambda off, n: cloud.pvfs.peek(idents["pvfs"], off, n),
            cluster_size=CHUNK,
        )
        expected = bytearray(data)
        expected[10:15] = b"DELTA"
        assert reopened.flatten().to_bytes() == bytes(expected)
