"""Cluster construction: the simulated Grid'5000 Nancy site.

:func:`build_cloud` assembles the full experimental infrastructure of §5.1:
compute nodes (GigE NIC, local disk, KVM), a manager node running the
BlobSeer version/provider managers, an NFS server (the prepropagation
source), and — depending on the experiment — BlobSeer and/or PVFS deployed
across the compute nodes' local disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..baselines.nfs import NfsServer
from ..baselines.pvfs import PvfsDeployment
from ..blobseer.service import BlobSeerDeployment
from ..calibration import Calibration, DEFAULT
from ..simkit.host import Fabric, Host
from ..topo import Topology, build_topology

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan
    from ..faults.policy import RetryPolicy
    from ..p2p.exchange import PeerNetwork


@dataclass
class Cloud:
    """A built cluster with its storage services."""

    fabric: Fabric
    compute: List[Host]
    manager: Host
    nfs_host: Host
    nfs: NfsServer
    blobseer: Optional[BlobSeerDeployment]
    pvfs: Optional[PvfsDeployment]
    calib: Calibration = field(default_factory=lambda: DEFAULT)
    injector: Optional["FaultInjector"] = None
    #: cooperative chunk-exchange overlay; None unless built with p2p=True
    p2p: Optional["PeerNetwork"] = None
    #: hierarchical fabric description; None on the flat (default) testbed
    topology: Optional[Topology] = None

    @property
    def env(self):
        return self.fabric.env

    @property
    def metrics(self):
        return self.fabric.metrics

    def run(self, until=None):
        return self.fabric.run(until)

    def inject_faults(self, plan: "FaultPlan") -> "FaultInjector":
        """Arm ``plan`` against this cloud (event times relative to now)."""
        from ..faults.injector import FaultInjector

        self.injector = FaultInjector(self, plan).arm()
        return self.injector


def build_cloud(
    compute_nodes: int,
    seed: int = 0,
    calib: Calibration = DEFAULT,
    with_blobseer: bool = True,
    with_pvfs: bool = True,
    data_nodes: Optional[int] = None,
    meta_nodes: Optional[int] = None,
    fairness: str = "equal-share",
    placement: str = "round-robin",
    dedup: bool = False,
    replication_factor: int = 1,
    replica_write_mode: str = "parallel",
    meta_replication: Optional[int] = None,
    retry: Optional["RetryPolicy"] = None,
    p2p: bool = False,
    p2p_cache_bytes: Optional[int] = None,
    p2p_directory: str = "announce",
    p2p_locate_fanout: int = 2,
    topology: Optional[Topology] = None,
    racks: int = 1,
    oversubscription: float = 4.0,
    rack_uplink: Optional[float] = None,
    core_capacity: Optional[float] = None,
    topo_aware: bool = True,
) -> Cloud:
    """Build the simulated testbed.

    Both storage services aggregate the *compute nodes'* local disks, as in
    the paper (§3.1.1: the repository is co-located with the compute nodes,
    not on dedicated storage hardware). ``data_nodes`` / ``meta_nodes``
    optionally concentrate the BlobSeer providers on the first K compute
    nodes instead — a dedicated-repository topology (cf. López García &
    Fernández del Castillo) used by the scale benchmark to reproduce the
    paper's fan-in contention regime at large n.

    ``racks > 1`` (or an explicit ``topology``) builds the hierarchical
    fabric: compute nodes are block-assigned to racks, the rack uplink
    defaults to ``hosts_per_rack * nic_bandwidth / oversubscription``, and
    infrastructure hosts (manager, NFS server) land in rack 0.
    ``topo_aware=True`` additionally turns on the locality consumers
    (rack-ranked p2p peer selection and same-rack replica reads);
    ``topo_aware=False`` keeps the policies topology-blind so experiments
    can isolate the fabric cost from the locality win. The default flat
    build (``racks=1``, no topology) is bit-identical to the seed model.
    """
    for label, k in (("data_nodes", data_nodes), ("meta_nodes", meta_nodes)):
        if k is not None and not 1 <= k <= compute_nodes:
            raise ValueError(
                f"{label} must be in [1, {compute_nodes}], got {k}"
            )
    if racks < 1:
        raise ValueError(f"racks must be >= 1, got {racks}")
    tb = calib.testbed
    if topology is None and racks > 1:
        topology = build_topology(
            [f"node{i:03d}" for i in range(compute_nodes)],
            racks,
            tb.nic_bandwidth,
            oversubscription=oversubscription,
            rack_uplink=rack_uplink,
            core_capacity=core_capacity,
            infra_hosts=("manager", "nfs-server"),
        )
    fabric = Fabric(
        seed=seed,
        nic_bandwidth=tb.nic_bandwidth,
        latency=tb.network_latency,
        fairness=fairness,
        topology=topology,
    )
    compute = [
        fabric.add_host(
            f"node{i:03d}",
            cores=tb.cores_per_node,
            disk_read_bw=tb.disk_read_bandwidth,
            disk_write_bw=tb.disk_write_bandwidth,
            disk_seek_time=tb.disk_seek_time,
        )
        for i in range(compute_nodes)
    ]
    manager = fabric.add_host("manager", cores=tb.cores_per_node)
    nfs_host = fabric.add_host("nfs-server", cores=tb.cores_per_node)
    nfs = NfsServer(nfs_host, calib.service)

    fabric.connection_setup = calib.service.connection_setup

    #: locality consumers only engage on a multi-rack fabric with
    #: topo_aware set; otherwise every policy runs its seed code path
    locality_topo = (
        topology if (topo_aware and topology is not None and topology.multi_rack)
        else None
    )
    blobseer = None
    if with_blobseer:
        blobseer = BlobSeerDeployment(
            fabric,
            data_hosts=compute[:data_nodes] if data_nodes else compute,
            meta_hosts=compute[:meta_nodes] if meta_nodes else compute,
            vmanager_host=manager,
            model=calib.service,
            placement=placement,
            write_buffer_bytes=calib.service.provider_write_buffer,
            dedup=dedup,
            replication_factor=replication_factor,
            replica_write_mode=replica_write_mode,
            meta_replication=meta_replication,
            retry=retry,
            topology=topology,
            rack_aware_reads=locality_topo is not None,
        )
    peer_network = None
    if p2p:
        if blobseer is None:
            raise ValueError("p2p chunk exchange requires with_blobseer=True")
        from ..p2p.exchange import P2PConfig, PeerNetwork

        config_kw = dict(
            directory=p2p_directory, locate_fanout=p2p_locate_fanout
        )
        if p2p_cache_bytes is not None:
            config_kw["cache_bytes"] = p2p_cache_bytes
        peer_network = PeerNetwork(
            fabric,
            compute,
            calib.service,
            config=P2PConfig(**config_kw),
            directory_host=manager,
            topology=locality_topo,
        )
        blobseer.peer_network = peer_network

    pvfs = None
    if with_pvfs:
        pvfs = PvfsDeployment(
            fabric,
            io_hosts=compute,
            stripe_size=calib.image.chunk_size,
            model=calib.service,
        )
    return Cloud(
        fabric=fabric,
        compute=compute,
        manager=manager,
        nfs_host=nfs_host,
        nfs=nfs,
        blobseer=blobseer,
        pvfs=pvfs,
        calib=calib,
        p2p=peer_network,
        topology=topology,
    )
