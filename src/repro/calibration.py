"""Calibrated physical constants of the reproduced testbed.

Grid'5000 Nancy (the paper, §5.1): 120 nodes, x86_64, local 250 GB disks at
~55 MB/s, GigE measured at 117.5 MB/s TCP with ~0.1 ms latency, KVM 0.12.5,
2 GB raw Debian image, 256 KB chunks (both BlobSeer and PVFS), no
replication.

Everything the simulator cannot derive from first principles is a named
constant here, with the provenance noted. The benchmark harness imports this
module only — no magic numbers in experiment code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common.units import GiB, KiB, MB, MiB, MILLISECONDS, MICROSECONDS


@dataclass(frozen=True)
class Testbed:
    """Hardware-level constants (paper §5.1, measured values)."""

    nic_bandwidth: float = 117.5 * MB          # measured TCP throughput
    network_latency: float = 0.1 * MILLISECONDS
    disk_read_bandwidth: float = 55 * MB       # local SATA, measured
    disk_write_bandwidth: float = 55 * MB
    disk_seek_time: float = 5 * MILLISECONDS   # avg seek, 7200rpm commodity class
    cores_per_node: int = 8
    ram_per_node: int = 8 * GiB


@dataclass(frozen=True)
class ImageSpec:
    """The VM image used throughout the evaluation (paper §5.1/§5.2)."""

    size: int = 2 * GiB                        # raw Debian Sid image
    chunk_size: int = 256 * KiB                # optimal trade-off (paper §5.2)
    #: bytes of the image actually touched during boot. Derived from Fig. 4d:
    #: ~13 GB fetched for 110 instances with chunk-granularity prefetch
    #: => ~118 MiB/instance incl. prefetch overhead; PVFS-backed qcow2 moved
    #: ~12 GB => ~109 MiB of truly-accessed data.
    boot_touched_bytes: int = 109 * MiB


@dataclass(frozen=True)
class BootModel:
    """Boot-phase behaviour (paper §2.3 and §3.1.3 measurements)."""

    #: mean measured inter-instance skew when hitting the boot sector
    initial_skew: float = 100 * MILLISECONDS
    #: hypervisor initialization overhead range (uniform), source of the skew
    hypervisor_init_min: float = 0.2
    hypervisor_init_max: float = 1.2
    #: number of read syscalls a boot issues (scattered small reads)
    read_ops: int = 160
    #: number of small config writes during boot
    write_ops: int = 24
    #: bytes written during boot (config files, logs)
    write_bytes: int = 2 * MiB
    #: CPU time consumed by the guest between I/Os, total
    cpu_seconds: float = 8.0
    #: fraction of reads that re-read already-fetched regions (cache hits)
    reread_fraction: float = 0.18


@dataclass(frozen=True)
class FuseModel:
    """Mirroring-module software overheads (paper §4.1, §5.4)."""

    #: extra user/kernel context-switch cost per FUSE-routed *metadata*
    #: operation (seek, create, delete — Fig. 7's gap)
    per_op_overhead: float = 45 * MICROSECONDS
    #: metadata-op cost for the plain local path (VFS only, no FUSE)
    local_per_op_overhead: float = 18 * MICROSECONDS
    #: per-block *data*-path overhead. FUSE readahead / big_writes merge
    #: small sequential requests into ~128 KiB FUSE requests, so the
    #: context-switch cost amortizes to a few us per 8 KiB block — which is
    #: why Fig. 6's BlockR is equal for both paths while Fig. 7's ops/s are
    #: not.
    data_op_overhead: float = 3 * MICROSECONDS
    local_data_op_overhead: float = 1.2 * MICROSECONDS
    #: effective cache-absorbed write bandwidth, default hypervisor file path
    #: (calibrated to Fig. 6 BlockW "local" ~190 MB/s)
    hypervisor_write_bandwidth: float = 190 * MB
    #: effective write bandwidth via the mirror's mmap write-back path
    #: (calibrated to Fig. 6 BlockW "our-approach" ~380 MB/s)
    mmap_write_bandwidth: float = 380 * MB
    #: cached re-read bandwidth (both paths, Fig. 6 BlockR ~460 MB/s)
    cached_read_bandwidth: float = 460 * MB
    #: dirty budget before write throttling (fraction of RAM, kernel default ~20%)
    dirty_budget: int = int(0.2 * 8 * GiB)


@dataclass(frozen=True)
class SnapshotModel:
    """Multisnapshotting workload (paper §5.3)."""

    #: local modifications per VM instance when the snapshot is taken
    diff_bytes: int = 15 * MiB
    #: intermediate Monte Carlo result file size (paper §5.5)
    montecarlo_state_bytes: int = 10 * MiB


@dataclass(frozen=True)
class ServiceModel:
    """Storage-service software constants."""

    #: server-side CPU cost to look up + serve one chunk request
    chunk_request_overhead: float = 60 * MICROSECONDS
    #: metadata tree node fetch cost (BlobSeer metadata provider)
    metadata_node_overhead: float = 35 * MICROSECONDS
    #: version-manager publish round-trip bookkeeping
    publish_overhead: float = 0.5 * MILLISECONDS
    #: BlobSeer async write pipeline: client-visible ack happens after the
    #: transfer, before the provider's disk commit (paper §5.3)
    async_write_ack: bool = True
    #: taktuk pipelining block size
    broadcast_block: int = 4 * MiB
    #: taktuk tree fanout (adaptive trees on GigE settle around 2)
    broadcast_fanout: int = 2
    #: per-file qcow2 creation cost during the qcow2-over-PVFS init phase
    qcow2_create_overhead: float = 50 * MILLISECONDS
    #: first-contact cost between two hosts (TCP + service handshake);
    #: drives the connection-count growth of Fig. 5(b)
    connection_setup: float = 5 * MILLISECONDS
    #: provider RAM budget for the async write pipeline; its exhaustion under
    #: write pressure is the Fig. 5(a) degradation mechanism
    provider_write_buffer: int = 2 * MiB
    #: client-side content-fingerprint throughput (SHA-class hash), used by
    #: the deduplication extension
    fingerprint_bandwidth: float = 400 * MB


@dataclass(frozen=True)
class Calibration:
    """The full calibrated model; default values reproduce the paper's setup."""

    testbed: Testbed = field(default_factory=Testbed)
    image: ImageSpec = field(default_factory=ImageSpec)
    boot: BootModel = field(default_factory=BootModel)
    fuse: FuseModel = field(default_factory=FuseModel)
    snapshot: SnapshotModel = field(default_factory=SnapshotModel)
    service: ServiceModel = field(default_factory=ServiceModel)


#: The default calibration used by every benchmark unless overridden.
DEFAULT = Calibration()
