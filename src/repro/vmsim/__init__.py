"""VM life-cycle simulation: images, boot traces, hypervisor, workloads."""

from .backends import LocalRawBackend, MirrorBackend, Qcow2PvfsBackend, SnapshotResult
from .bonnie import BonnieBenchmark, BonnieResults
from .boottrace import BootOp, boot_trace, trace_stats
from .hypervisor import VMInstance
from .image import HotRegion, VmImage, make_image
from .montecarlo import MonteCarloConfig, MonteCarloWorker
from .workloads import cpu_workload, log_append_workload, read_your_writes_workload

__all__ = [
    "BonnieBenchmark",
    "BonnieResults",
    "BootOp",
    "HotRegion",
    "LocalRawBackend",
    "MirrorBackend",
    "MonteCarloConfig",
    "MonteCarloWorker",
    "Qcow2PvfsBackend",
    "SnapshotResult",
    "VMInstance",
    "VmImage",
    "boot_trace",
    "cpu_workload",
    "log_append_workload",
    "make_image",
    "read_your_writes_workload",
    "trace_stats",
]
