"""Tests for the qcow2-like copy-on-write image format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.qcow2 import HEADER_BYTES, Qcow2Image
from repro.common.errors import ImageFormatError, OutOfRangeError
from repro.common.payload import Payload

CL = 64  # small clusters for tests
IMG = 8 * CL


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def backed_image(data=None, size=IMG, cluster=CL):
    data = data if data is not None else pattern(size)
    backing = Payload.from_bytes(data)

    reads = []

    def backing_read(off, n):
        reads.append((off, n))
        return backing.slice(off, off + n)

    img = Qcow2Image(size, backing_read, cluster_size=cluster)
    return img, data, reads


class TestRead:
    def test_unallocated_falls_through_to_backing(self):
        img, data, reads = backed_image()
        payload, report = img.read(10, 100)
        assert payload.to_bytes() == data[10:110]
        assert report.backing_reads == [(10, 54), (64, 46)]
        assert report.local_read_bytes == 0

    def test_no_backing_reads_zeros(self):
        img = Qcow2Image(IMG, None, cluster_size=CL)
        payload, report = img.read(0, 100)
        assert payload.to_bytes() == b"\x00" * 100
        assert report.backing_reads == []

    def test_backing_not_cached_reads_repeat(self):
        """qcow2 never localizes on read — every read hits the backing file."""
        img, data, reads = backed_image()
        img.read(0, 10)
        img.read(0, 10)
        assert reads == [(0, 10), (0, 10)]

    def test_out_of_range(self):
        img, _, _ = backed_image()
        with pytest.raises(OutOfRangeError):
            img.read(IMG - 5, 10)

    def test_invalid_sizes(self):
        with pytest.raises(ImageFormatError):
            Qcow2Image(0, None)


class TestWrite:
    def test_full_cluster_write_no_cow_read(self):
        img, data, reads = backed_image()
        report = img.write(CL, Payload.from_bytes(b"x" * CL))
        assert report.backing_reads == []
        assert report.clusters_allocated == 1
        assert report.local_write_bytes == CL

    def test_partial_write_triggers_cow(self):
        img, data, reads = backed_image()
        report = img.write(CL + 10, Payload.from_bytes(b"yy"))
        assert report.backing_reads == [(CL, CL)]
        assert report.clusters_allocated == 1
        payload, r2 = img.read(CL, CL)
        expected = bytearray(data[CL : 2 * CL])
        expected[10:12] = b"yy"
        assert payload.to_bytes() == bytes(expected)
        assert r2.backing_reads == []  # now allocated: served locally

    def test_second_write_same_cluster_no_realloc(self):
        img, _, _ = backed_image()
        img.write(0, Payload.from_bytes(b"a"))
        report = img.write(5, Payload.from_bytes(b"b"))
        assert report.clusters_allocated == 0
        assert report.backing_reads == []

    def test_write_spanning_clusters(self):
        img, data, _ = backed_image()
        span = Payload.from_bytes(pattern(CL + 20, seed=7))
        report = img.write(CL - 10, span)
        # spans clusters 0 (tail), 1 (full) and 2 (head): 3 allocations,
        # CoW backing reads for the two partially covered ones
        assert report.clusters_allocated == 3
        assert report.backing_reads == [(0, CL), (2 * CL, CL)]
        payload, _ = img.read(CL - 10, CL + 20)
        assert payload.to_bytes() == pattern(CL + 20, seed=7)

    def test_read_mixes_allocated_and_backing(self):
        img, data, _ = backed_image()
        img.write(CL, Payload.from_bytes(b"Z" * CL))
        payload, report = img.read(0, 3 * CL)
        expected = bytearray(data[: 3 * CL])
        expected[CL : 2 * CL] = b"Z" * CL
        assert payload.to_bytes() == bytes(expected)
        assert report.backing_reads == [(0, CL), (2 * CL, CL)]
        assert report.local_read_bytes == CL


class TestAccounting:
    def test_file_bytes_counts_allocated_plus_header(self):
        img, _, _ = backed_image()
        assert img.file_bytes == HEADER_BYTES
        img.write(0, Payload.from_bytes(b"x"))
        assert img.file_bytes == HEADER_BYTES + CL
        img.write(3 * CL, Payload.from_bytes(b"y" * CL))
        assert img.file_bytes == HEADER_BYTES + 2 * CL

    def test_tail_cluster_short(self):
        img = Qcow2Image(CL + 10, None, cluster_size=CL)
        img.write(CL, Payload.from_bytes(b"ab"))
        assert img.file_bytes == HEADER_BYTES + 10


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["read", "write"]),
            st.integers(0, IMG - 1),
            st.integers(1, 2 * CL),
        ),
        max_size=20,
    )
)
def test_matches_flat_model(ops):
    """qcow2 over a backing image behaves like a plain mutable buffer."""
    img, data, _ = backed_image()
    model = bytearray(data)
    for kind, off, ln in ops:
        ln = min(ln, IMG - off)
        if kind == "read":
            payload, _ = img.read(off, ln)
            assert payload.to_bytes() == bytes(model[off : off + ln])
        else:
            content = pattern(ln, seed=off + ln)
            img.write(off, Payload.from_bytes(content))
            model[off : off + ln] = content
    assert img.flatten().to_bytes() == bytes(model)
