"""Cooperative peer-to-peer chunk exchange sweep (not a paper figure).

The paper's multideployment experiments (§5, Fig. 4) degrade as every
booting node pulls the same hot image chunks from the same few providers.
The ``repro.p2p`` subsystem lets nodes serve already-fetched chunks to each
other; this sweep quantifies the effect:

* boot-time curve — avg boot time vs instance count for the provider-only
  baseline and both directory strategies (announce / rendezvous);
* provider offload — bytes served by the data providers vs instance count
  (the contention the exchange removes);
* cache sizing — peer hit ratio and provider bytes vs per-node cache budget
  at the largest instance count.

Acceptance gate of the subsystem: at the largest swept count the exchange
cuts provider bytes by >= 30% and improves average boot time. Every point
goes through the parallel sweep runner and the persistent result cache.
"""

import dataclasses

from repro.analysis import Figure, Series, ascii_chart, check_shape, render_figure
from repro.common.units import MiB

from common import (
    P2P,
    PointSpec,
    active_profile,
    emit,
    figure_data,
    register_profile,
    run_sweep,
)

#: (strategy label, spec params) — baseline first
STRATEGIES = (
    ("baseline", (("p2p", False),)),
    ("announce", (("p2p", True), ("directory", "announce"))),
    ("rendezvous", (("p2p", True), ("directory", "rendezvous"))),
)

CACHE_MIBS = (4, 16, 64)

if active_profile().name == "quick":
    PROFILE = register_profile(
        dataclasses.replace(
            P2P,
            name="p2p-quick",
            pool_nodes=24,
            instance_counts=(4, 8, 16),
            image_size=64 * MiB,
            touched_bytes=8 * MiB,
        )
    )
else:
    PROFILE = P2P

COUNTS = PROFILE.instance_counts
N_MAX = COUNTS[-1]


def matrix_specs():
    return [
        PointSpec(
            kind="p2p", profile=PROFILE.name, approach="mirror", n=n, seed=1,
            params=params,
        )
        for _label, params in STRATEGIES
        for n in COUNTS
    ]


def cache_specs():
    return [
        PointSpec(
            kind="p2p", profile=PROFILE.name, approach="mirror", n=N_MAX, seed=1,
            params=(
                ("p2p", True),
                ("directory", "announce"),
                ("cache_mib", mib),
            ),
        )
        for mib in CACHE_MIBS
    ]


def _strategy_of(point):
    if not point.spec.param("p2p", True):
        return "baseline"
    return point.spec.param("directory", "announce")


def test_p2p_sweep(benchmark, sweep_cache):
    """Run the strategy x instance-count matrix (feeds both panels)."""

    def sweep():
        points = run_sweep(matrix_specs())
        return {(_strategy_of(p), p.spec.n): p for p in points}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sweep_cache["p2p"] = result
    assert len(result) == len(STRATEGIES) * len(COUNTS)
    for (label, _n), p in result.items():
        if label == "baseline":
            assert p.metrics["peer_hit_ratio"] == 0.0
        else:
            assert p.metrics["peer_hit_ratio"] > 0.0


def test_p2p_boot_curve(benchmark, sweep_cache):
    sweep = sweep_cache["p2p"]

    def compute():
        out = {}
        for label, _params in STRATEGIES:
            s = Series(label)
            for n in COUNTS:
                s.add(n, sweep[(label, n)].metrics["avg_boot_time"])
            out[label] = s
        return out

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    fig = Figure(
        "p2p_boot",
        "Avg boot time with cooperative chunk exchange (mirror approach)",
        "instances", "seconds",
    )
    for s in series.values():
        fig.add_series(s)
    checks = [
        check_shape(
            f"announce improves avg boot time at n={N_MAX}",
            series["announce"].at(N_MAX) < series["baseline"].at(N_MAX),
        ),
        check_shape(
            "the exchange flattens the curve: announce's boot-time growth "
            f"from n={COUNTS[0]} to n={N_MAX} is below the baseline's",
            (series["announce"].at(N_MAX) - series["announce"].at(COUNTS[0]))
            < (series["baseline"].at(N_MAX) - series["baseline"].at(COUNTS[0])),
        ),
    ]
    emit(
        "p2p_boot",
        render_figure(fig, fmt="{:12.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks),
        figure_data(fig, checks),
    )
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_p2p_provider_offload(benchmark, sweep_cache):
    sweep = sweep_cache["p2p"]

    def compute():
        out = {}
        for label, _params in STRATEGIES:
            s = Series(label)
            for n in COUNTS:
                s.add(n, sweep[(label, n)].metrics["provider_bytes"])
            out[label] = s
        return out

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    fig = Figure(
        "p2p_provider_bytes",
        "Bytes served by the data providers (lower = less contention)",
        "instances", "bytes",
    )
    for s in series.values():
        fig.add_series(s)
    drop = 1.0 - series["announce"].at(N_MAX) / series["baseline"].at(N_MAX)
    checks = [
        check_shape(
            f"announce cuts provider bytes >= 30% at n={N_MAX} "
            f"(measured {drop:.0%})",
            drop >= 0.30,
        ),
        check_shape(
            "rendezvous offloads providers too (no directory traffic at all)",
            series["rendezvous"].at(N_MAX) < series["baseline"].at(N_MAX),
        ),
        check_shape(
            "baseline provider bytes grow linearly with the instance count "
            "(every booter re-fetches everything)",
            series["baseline"].at(N_MAX) > series["baseline"].at(COUNTS[0]) * 2,
        ),
    ]
    emit(
        "p2p_provider_bytes",
        render_figure(fig, fmt="{:14.0f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks),
        figure_data(fig, checks),
    )
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_p2p_cache_sizing(benchmark, sweep_cache):
    def sweep():
        points = run_sweep(cache_specs())
        return {p.spec.param("cache_mib"): p for p in points}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fig = Figure(
        "p2p_cache",
        f"Peer hit ratio vs per-node cache budget (announce, n={N_MAX})",
        "cache MiB", "hit ratio",
    )
    hits = Series("peer_hit_ratio")
    for mib in CACHE_MIBS:
        hits.add(mib, result[mib].metrics["peer_hit_ratio"])
    fig.add_series(hits)
    checks = [
        check_shape(
            "every cache size produces peer hits",
            all(result[m].metrics["peer_hit_ratio"] > 0.0 for m in CACHE_MIBS),
        ),
        check_shape(
            "a bigger cache never serves fewer peer hits",
            hits.at(CACHE_MIBS[-1]) >= hits.at(CACHE_MIBS[0]),
        ),
    ]
    emit(
        "p2p_cache",
        render_figure(fig, fmt="{:10.3f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks),
        figure_data(fig, checks),
    )
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
