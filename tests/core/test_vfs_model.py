"""Model-based property test: the mirroring VFS against a flat byte model.

Drives a mirror handle through random sequences of reads, writes, COMMITs,
CLONE, close/reopen — checking after every step that the handle's view
matches a plain ``bytearray`` model, and at the end that every published
snapshot still reads back exactly the model state at its publish time
(the shadowing guarantee, end to end through all services).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.core import mount
from repro.simkit.host import Fabric

CHUNK = 2 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


op_strategy = st.one_of(
    st.tuples(st.just("read"), st.integers(0, IMG - 1), st.integers(1, 3 * CHUNK)),
    st.tuples(st.just("write"), st.integers(0, IMG - 1), st.integers(1, CHUNK)),
    st.tuples(st.just("commit"), st.just(0), st.just(0)),
    st.tuples(st.just("clone"), st.just(0), st.just(0)),
    st.tuples(st.just("reopen"), st.just(0), st.just(0)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(op_strategy, max_size=14), st.integers(0, 2**16))
def test_vfs_matches_flat_model(ops, content_seed):
    fab = Fabric(seed=77)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    base = pattern(IMG, seed=content_seed % 97)
    rec = dep.seed_blob(Payload.from_bytes(base), CHUNK)

    model = bytearray(base)
    published = []  # (blob_id, version, model-at-publish)
    write_seq = [0]

    def scenario():
        handle = yield from mount(hosts[0], dep, rec.blob_id, rec.version, path="/m")
        cloned = False
        for kind, off, ln in ops:
            if kind == "read":
                ln = min(ln, IMG - off)
                got = yield from handle.read(off, ln)
                assert got.to_bytes() == bytes(model[off : off + ln])
            elif kind == "write":
                ln = min(ln, IMG - off)
                write_seq[0] += 1
                data = pattern(ln, seed=write_seq[0])
                yield from handle.write(off, Payload.from_bytes(data))
                model[off : off + ln] = data
            elif kind == "commit":
                if not cloned:
                    yield from handle.ioctl_clone()
                    cloned = True
                snap = yield from handle.ioctl_commit()
                published.append((snap.blob_id, snap.version, bytes(model)))
            elif kind == "clone":
                if not cloned:
                    yield from handle.ioctl_clone()
                    cloned = True
            elif kind == "reopen":
                yield from handle.close()
                handle = yield from mount(
                    hosts[0], dep, rec.blob_id, rec.version, path="/m"
                )
                cloned = handle.target_blob != handle.source_blob
        # final full-image check through the handle
        got = yield from handle.read(0, IMG)
        assert got.to_bytes() == bytes(model)

        # every published snapshot is immutable and standalone
        reader = dep.client(hosts[2])
        for blob_id, version, expected in published:
            img = yield from reader.read(blob_id, version, 0, IMG)
            assert img.to_bytes() == expected
        return True

    assert fab.run(fab.env.process(scenario(), name="model-test"))
