"""Critical-path extraction and time-breakdown analysis over span trees.

Answers the question the aggregate counters cannot: *where did a VM's boot
(or a snapshot) actually spend its time?* The core primitive is
:func:`attribute`: project every descendant span of a root onto the root's
time interval and, at every instant, attribute that instant to the
**deepest** span covering it. Because spans nest causally, the deepest cover
is the most specific explanation of what the simulation was doing — a chunk
fetch waiting on a flow attributes to the flow (``net``), the FUSE per-op
overhead around it attributes to the enclosing VFS span, and so on. The
resulting segments partition the root's interval exactly, so the
per-category breakdown sums to the root's duration by construction.

``critical_path`` is the same sweep with adjacent same-span segments merged:
for a (sequential) root span it is literally the chain of operations that
determined its latency; for roots with parallel children the deepest-latest
tie-break picks one representative branch per instant.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from .span import Span

__all__ = [
    "Segment",
    "attribute",
    "critical_path",
    "category_breakdown",
    "coverage",
    "boot_spans",
    "snapshot_spans",
    "render_breakdown_table",
    "render_critical_path",
]


class Segment(NamedTuple):
    """One attributed slice of a root span's interval."""

    t0: float
    t1: float
    span: Span

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def _subtree(root: Span, spans: Sequence[Span]) -> List[Tuple[float, float, int, Span]]:
    """Clipped ``(t0, t1, depth, span)`` items of root's subtree (root incl.)."""
    children: Dict[int, List[Span]] = {}
    for s in spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)
    root_end = root.t1 if root.t1 is not None else root.t0
    items: List[Tuple[float, float, int, Span]] = []
    frontier: List[Tuple[Span, int]] = [(root, 0)]
    while frontier:
        span, depth = frontier.pop()
        t0 = max(span.t0, root.t0)
        t1 = span.t1 if span.t1 is not None else root_end
        t1 = min(t1, root_end)
        if t1 > t0 or span is root:
            items.append((t0, t1, depth, span))
        for child in children.get(span.span_id, ()):
            frontier.append((child, depth + 1))
    return items


def attribute(root: Span, spans: Sequence[Span]) -> List[Segment]:
    """Partition ``[root.t0, root.t1]`` into deepest-cover segments.

    Every instant of the root's interval is attributed to exactly one span
    of its subtree (ties: deeper, then later-started, then later-created
    wins), so ``sum(seg.duration) == root.duration`` up to float error.
    """
    items = _subtree(root, spans)
    if not items or root.t1 is None or root.t1 <= root.t0:
        return []
    boundaries = sorted({t for it in items for t in (it[0], it[1])})
    # start-ordered for incremental pushes; the active set is a lazy max-heap
    # keyed by (depth, t0, creation order) — spans never re-activate after
    # their end, so stale heads are popped lazily.
    items.sort(key=lambda it: it[0])
    heap: List[Tuple[float, float, int, float, Span]] = []
    idx = 0
    raw: List[Segment] = []
    for b0, b1 in zip(boundaries, boundaries[1:]):
        if b1 <= b0:
            continue
        while idx < len(items) and items[idx][0] <= b0:
            t0, t1, depth, span = items[idx]
            heapq.heappush(heap, (-depth, -t0, -span.span_id, t1, span))
            idx += 1
        while heap and heap[0][3] <= b0:
            heapq.heappop(heap)
        if not heap:
            continue  # gap outside any span (cannot happen inside the root)
        raw.append(Segment(b0, b1, heap[0][4]))
    # merge adjacent segments attributed to the same span
    merged: List[Segment] = []
    for seg in raw:
        if merged and merged[-1].span is seg.span and merged[-1].t1 == seg.t0:
            merged[-1] = Segment(merged[-1].t0, seg.t1, seg.span)
        else:
            merged.append(seg)
    return merged


def critical_path(
    root: Span, spans: Sequence[Span], min_duration: float = 0.0
) -> List[Segment]:
    """The deepest-cover chain through ``root``, tiny segments filtered."""
    return [s for s in attribute(root, spans) if s.duration > min_duration]


def category_breakdown(root: Span, spans: Sequence[Span]) -> Dict[str, float]:
    """Seconds per category over the root's interval; sums to root.duration."""
    out: Dict[str, float] = {}
    for seg in attribute(root, spans):
        cat = seg.span.category
        out[cat] = out.get(cat, 0.0) + seg.duration
    return out


def coverage(root: Span, spans: Sequence[Span]) -> float:
    """Fraction of the root's time explained by specific descendant spans.

    Time attributed to the root itself (uninstrumented gaps) or to spans of
    category ``"other"`` does not count. This is the acceptance metric: a
    traced VM boot must come out >= 0.95.
    """
    if root.t1 is None or root.t1 <= root.t0:
        return 0.0
    explained = 0.0
    for seg in attribute(root, spans):
        if seg.span is not root and seg.span.category != "other":
            explained += seg.duration
    return explained / (root.t1 - root.t0)


# ---------------------------------------------------------------------- #
# deployment-level helpers
# ---------------------------------------------------------------------- #
def boot_spans(spans: Iterable[Span]) -> List[Span]:
    """Per-VM boot root spans, in VM order."""
    return sorted(
        (s for s in spans if s.category == "vm" and s.name.startswith("boot:")),
        key=lambda s: s.name,
    )


def snapshot_spans(spans: Iterable[Span]) -> List[Span]:
    """Per-VM snapshot root spans, in VM order."""
    return sorted(
        (s for s in spans if s.category == "snapshot" and s.name.startswith("snapshot:")),
        key=lambda s: s.name,
    )


def render_breakdown_table(
    roots: Sequence[Span],
    spans: Sequence[Span],
    title: str = "per-VM time breakdown (seconds)",
    categories: Optional[Sequence[str]] = None,
) -> str:
    """Paper-style table: one row per root span, one column per category."""
    from ..analysis.report import render_bars

    breakdowns = [category_breakdown(r, spans) for r in roots]
    if categories is None:
        totals: Dict[str, float] = {}
        for b in breakdowns:
            for cat, secs in b.items():
                totals[cat] = totals.get(cat, 0.0) + secs
        categories = sorted(totals, key=lambda c: -totals[c])
    labels = [r.name for r in roots]
    groups = {cat: [b.get(cat, 0.0) for b in breakdowns] for cat in categories}
    groups["total"] = [r.duration for r in roots]
    return render_bars(title, labels, groups, fmt="{:12.3f}")


def render_critical_path(
    root: Span, spans: Sequence[Span], min_fraction: float = 0.01
) -> str:
    """Human-readable critical path of one root span.

    Segments shorter than ``min_fraction`` of the root are folded into a
    single trailing "(+ N shorter segments, X s)" line.
    """
    duration = root.duration
    segments = attribute(root, spans)
    lines = [f"critical path of {root.name} ({duration:.3f} s):"]
    folded = 0
    folded_secs = 0.0
    for seg in segments:
        if duration > 0 and seg.duration < min_fraction * duration:
            folded += 1
            folded_secs += seg.duration
            continue
        pct = 100.0 * seg.duration / duration if duration > 0 else 0.0
        where = seg.span.name if seg.span is not root else "(uninstrumented)"
        lines.append(
            f"  {seg.t0:10.4f} -> {seg.t1:10.4f}  {seg.duration:8.4f} s"
            f"  {pct:5.1f}%  [{seg.span.category}] {where}"
        )
    if folded:
        lines.append(f"  (+ {folded} shorter segments, {folded_secs:.4f} s)")
    return "\n".join(lines)
