#!/usr/bin/env python3
"""Iterative distributed debugging with CLONE/COMMIT (paper §3.2).

The paper's motivating control-API scenario: a distributed application hits
a bug that only appears at scale, and re-running it from scratch to the
failure point is prohibitively expensive. Instead, the deployment's state is
captured with CLONE+COMMIT *right before* the bug triggers; every snapshot
is an independent image, so candidate fixes can be applied to clones and
tested repeatedly from the captured point — without re-running the long
prefix and without ever disturbing the captured state.

Run: ``python examples/debug_cloning.py``
"""

from repro.calibration import Calibration, ImageSpec
from repro.cloud import build_cloud
from repro.cloud.middleware import CloudMiddleware
from repro.common.payload import Payload
from repro.common.units import KiB, MiB, fmt_time
from repro.core import mount
from repro.vmsim import make_image

CONFIG_OFFSET = 48 * MiB  # where the app's config file lives in the image
BUGGY = b"threads=64 \x00"  # the misconfiguration that crashes at scale
FIXED = b"threads=8  \x00"


def main() -> None:
    calib = Calibration(
        image=ImageSpec(size=64 * MiB, chunk_size=256 * KiB, boot_touched_bytes=6 * MiB)
    )
    cloud = build_cloud(8, seed=13, calib=calib)
    image = make_image(calib.image.size, calib.image.boot_touched_bytes, n_regions=12)
    mw = CloudMiddleware(cloud)

    # --- deploy 4 workers and run the expensive prefix ----------------------
    res = mw.deploy_set(image, 4, "mirror")
    print(f"deployed {len(res.vms)} workers in {fmt_time(res.completion_time)}")

    def long_prefix(vm):
        # hours of simulated work that produce in-image state, incl. the
        # buggy config the app wrote during contextualization
        yield cloud.env.timeout(3600.0)
        yield from vm.backend.write(CONFIG_OFFSET, Payload.from_bytes(BUGGY))

    cloud.run(cloud.env.all_of([cloud.env.process(long_prefix(vm)) for vm in res.vms]))
    print(f"prefix executed up to the failure point (t={fmt_time(cloud.env.now)})")

    # --- capture the state right before the bug -----------------------------
    campaign = mw.snapshot_set(res.vms, "mirror")
    captured = list(campaign.per_instance)
    print(f"captured {len(captured)} independent snapshots in "
          f"{fmt_time(campaign.completion_time)}: "
          + ", ".join(s.ident for s in captured))

    # --- iterate: analyze + patch clones of the captured state --------------
    def attempt_fix(snapshot_ident: str, patch: bytes, attempt: int):
        blob, version = snapshot_ident[4:].split("@v")
        node = cloud.compute[4 + attempt % 4]  # scratch nodes
        handle = yield from mount(
            node, cloud.blobseer, int(blob), int(version),
            path=f"/debug/attempt{attempt}-{snapshot_ident}",
        )
        config = yield from handle.read(CONFIG_OFFSET, len(patch))
        print(f"  attempt {attempt}: found config {config.to_bytes()!r}")
        yield from handle.write(CONFIG_OFFSET, Payload.from_bytes(patch))
        # resume the app from the patched state: does it still crash?
        patched = yield from handle.read(CONFIG_OFFSET, len(patch))
        crashed = patched.to_bytes() == BUGGY
        # keep the patched state as its own lineage for the next iteration
        yield from handle.ioctl_clone()
        rec = yield from handle.ioctl_commit()
        return crashed, rec

    for attempt, patch in enumerate([BUGGY, FIXED]):  # first try fails
        crashed, rec = cloud.run(
            cloud.env.process(attempt_fix(captured[0].ident, patch, attempt))
        )
        outcome = "still crashes" if crashed else "runs clean"
        print(f"  attempt {attempt}: patched lineage blob {rec.blob_id} "
              f"v{rec.version} -> {outcome}")
        if not crashed:
            break

    # --- the captured snapshot itself was never disturbed -------------------
    def verify_untouched():
        blob, version = captured[0].ident[4:].split("@v")
        reader = cloud.blobseer.client(cloud.manager)
        config = yield from reader.read(int(blob), int(version), CONFIG_OFFSET, len(BUGGY))
        return config.to_bytes()

    still = cloud.run(cloud.env.process(verify_untouched()))
    assert still == BUGGY
    print(f"captured snapshot still holds the original state ({still!r}): "
          "debugging never mutated it")


if __name__ == "__main__":
    main()
