"""End-to-end restore-to-version and chain compaction over a live deployment."""

import pytest

from repro.blobseer import collect_garbage
from repro.common.errors import LineageError
from repro.lineage import LineageForest, compact_chain, restore_to_version

from helpers import CHUNK, IMG, build_chain, make, pattern, run


def expected_bytes(depth):
    """Image content after ``depth`` one-chunk diffs (see build_chain)."""
    data = bytearray(pattern(IMG))
    for i in range(depth):
        off = (i % 8) * CHUNK
        data[off:off + CHUNK] = pattern(CHUNK, 20 + i)
    return bytes(data)


def restore(fab, dep, host, blob_id, version, **kw):
    return run(fab, restore_to_version(dep, host, blob_id, version, **kw))


def compact(fab, dep, host, blob_id, **kw):
    return run(fab, compact_chain(dep, host, blob_id, **kw))


class TestRestore:
    def test_restore_mid_chain_reads_historical_content(self, chain):
        fab, dep, hosts, rec, records = chain
        mid = records[2]  # after 2 diffs
        res = restore(fab, dep, hosts[2], mid.blob_id, mid.version)
        assert res.source == (mid.blob_id, mid.version)
        assert res.blob_id != mid.blob_id  # a fresh branch, not a rewrite
        assert not res.retired_source

        def read_all():
            p = yield from res.backend.read(0, IMG)
            return p

        assert run(fab, read_all()).to_bytes() == expected_bytes(2)

    def test_restored_head_joins_the_forest(self, chain):
        fab, dep, hosts, rec, records = chain
        mid = records[2]
        res = restore(fab, dep, hosts[2], mid.blob_id, mid.version)
        forest = LineageForest.from_registry(dep.registry)
        assert forest.parent(res.blob_id, res.version) == (
            mid.blob_id, mid.version,
        )
        assert forest.is_ancestor(
            (rec.blob_id, rec.version), (res.blob_id, res.version)
        )

    def test_scan_pays_one_hop_per_ancestor(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        res = restore(fab, dep, hosts[2], head.blob_id, head.version)
        forest = LineageForest.from_registry(dep.registry)
        raw = forest.ancestry(head.blob_id, head.version)
        assert res.scan_hops == len(raw)
        assert res.chain == tuple(raw)
        assert res.scan_time > 0
        assert res.restore_time >= res.scan_time + res.clone_time

    def test_restore_from_retired_mid_chain(self, chain):
        """Satellite: a retired version restores until GC reclaims it."""
        fab, dep, hosts, rec, records = chain
        mid = records[2]
        dep.registry.delete_version(mid.blob_id, mid.version)
        res = restore(fab, dep, hosts[2], mid.blob_id, mid.version)
        assert res.retired_source

        def read_all():
            p = yield from res.backend.read(0, IMG)
            return p

        assert run(fab, read_all()).to_bytes() == expected_bytes(2)
        # no leaked leases or in-flight pins
        assert dep.registry.pin_count(mid.blob_id, mid.version) == 0

    def test_restore_after_gc_raises(self, chain):
        fab, dep, hosts, rec, records = chain
        # the head's last diff is exclusive to it, so retiring the head and
        # sweeping actually reclaims chunks (an interior version's diffs
        # stay alive through its descendants and remain restorable)
        head = records[-1]
        dep.registry.delete_version(head.blob_id, head.version)
        assert collect_garbage(dep).bytes_reclaimed > 0
        with pytest.raises(LineageError, match="garbage-collected"):
            restore(fab, dep, hosts[2], head.blob_id, head.version)
        # the failed restore leaked nothing
        assert dep.registry.pin_count(head.blob_id, head.version) == 0

    def test_restore_pin_defers_concurrent_teardown(self, chain):
        """A teardown delete_blob racing a restore loses gracefully."""
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        outcome = {}

        def racing():
            proc = fab.env.process(restore_to_version(
                dep, hosts[2], head.blob_id, head.version
            ))
            # fire the teardown while the restore scan is mid-flight
            yield fab.env.timeout(1e-6)
            dep.registry.delete_blob(head.blob_id)
            res = yield proc
            outcome["res"] = res

        run(fab, racing())
        res = outcome["res"]
        # the restore completed against the pinned source; the deferred
        # teardown then retired the whole source blob
        assert res.source == (head.blob_id, head.version)
        assert head.blob_id not in dep.registry.blob_ids()
        assert res.blob_id in dep.registry.blob_ids()


class TestCompaction:
    def test_flatten_bounds_the_walk(self):
        fab, dep, hosts, rec = make()
        records = build_chain(fab, dep, hosts[0], rec, depth=12)
        head = records[-1]
        before = restore(fab, dep, hosts[2], head.blob_id, head.version)
        report = compact(
            fab, dep, hosts[1], head.blob_id, policy="flatten", depth_bound=3
        )
        assert report.skips_written > 0
        assert report.versions_merged == 0
        assert report.depth_after <= 3
        after = restore(fab, dep, hosts[2], head.blob_id, head.version)
        assert after.scan_hops <= 3 + 1
        assert after.scan_hops < before.scan_hops
        assert after.scan_time < before.scan_time

        def read_all():
            p = yield from after.backend.read(0, IMG)
            return p

        assert run(fab, read_all()).to_bytes() == expected_bytes(12)

    def test_flatten_is_idempotent(self):
        fab, dep, hosts, rec = make()
        records = build_chain(fab, dep, hosts[0], rec, depth=9)
        head = records[-1]
        first = compact(
            fab, dep, hosts[1], head.blob_id, policy="flatten", depth_bound=3
        )
        second = compact(
            fab, dep, hosts[1], head.blob_id, policy="flatten", depth_bound=3
        )
        assert first.skips_written > 0
        assert second.skips_written == 0
        assert second.depth_after == first.depth_after

    def test_merge_unpublishes_interiors_keeps_anchors(self):
        fab, dep, hosts, rec = make()
        # every commit rewrites chunk 0, so each interior diff is
        # superseded — exactly what delta-merge reclaims
        records = build_chain(fab, dep, hosts[0], rec, depth=8, chunk_index=0)
        head = records[-1]
        live_before = len(dep.registry.live_records())
        report = compact(
            fab, dep, hosts[1], head.blob_id,
            policy="merge", depth_bound=4, gc=True,
        )
        assert report.versions_merged > 0
        # every merged commit surrenders its superseded diff; the merged
        # clone head (v1) shares the seed's tree and owns no diff
        assert report.bytes_reclaimed == (report.versions_merged - 1) * CHUNK
        live_after = len(dep.registry.live_records())
        assert live_after == live_before - report.versions_merged
        # head and genesis survive; the chain still restores correctly
        assert dep.registry.is_published(head.blob_id, head.version)
        res = restore(fab, dep, hosts[2], head.blob_id, head.version)

        def read_all():
            p = yield from res.backend.read(0, IMG)
            return p

        expected = bytearray(pattern(IMG))
        expected[0:CHUNK] = pattern(CHUNK, 20 + 7)  # the last rewrite wins
        assert run(fab, read_all()).to_bytes() == bytes(expected)

    def test_merge_defers_pinned_interior(self):
        """Satellite: merge cannot rip a version out from under a restore."""
        fab, dep, hosts, rec = make()
        records = build_chain(fab, dep, hosts[0], rec, depth=8)
        # records[3] (v4) is a non-anchor interior at depth_bound=4
        # (anchors land on v3 and v7, counted from the seed's genesis)
        head, interior = records[-1], records[3]
        dep.registry.pin_version(interior.blob_id, interior.version)
        compact(
            fab, dep, hosts[1], head.blob_id, policy="merge", depth_bound=4
        )
        # still published while the lease is held, gone after
        assert dep.registry.is_published(interior.blob_id, interior.version)
        dep.registry.unpin_version(interior.blob_id, interior.version)
        assert not dep.registry.is_published(interior.blob_id, interior.version)

    def test_merge_spares_the_clone_sources_history(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        compact(
            fab, dep, hosts[1], head.blob_id, policy="merge", depth_bound=2
        )
        # the seed blob (the clone source) is untouched by the merge
        assert dep.registry.is_published(rec.blob_id, rec.version)

    def test_invalid_policy_and_bound_raise(self, chain):
        fab, dep, hosts, rec, records = chain
        head = records[-1]
        with pytest.raises(LineageError):
            compact(fab, dep, hosts[1], head.blob_id, policy="squash")
        with pytest.raises(LineageError):
            compact(fab, dep, hosts[1], head.blob_id, depth_bound=0)
