# Convenience targets for the reproduction.

.PHONY: install test lint bench bench-quick perf scale scale-smoke sweep-smoke p2p-smoke churn churn-smoke lineage lineage-smoke topo topo-smoke examples clean

install:
	pip install -e . || python setup.py develop

test:            ## tier-1 test suite (what CI runs)
	PYTHONPATH=src python -m pytest -x -q

lint:            ## ruff over src/ and tests/ (what the CI lint job runs)
	ruff check src tests

bench:           ## full paper-profile figure reproduction (~25 min)
	pytest benchmarks/ --benchmark-only

bench-quick:     ## scaled-down smoke of every figure (~40 s)
	REPRO_BENCH_PROFILE=quick pytest benchmarks/ --benchmark-only

sweep-smoke:     ## quick-profile fig4 sweep through the parallel runner (2 jobs)
	PYTHONPATH=src python -m repro sweep --figure fig4 --profile quick \
		--approach mirror --jobs 2 --no-cache

p2p-smoke:       ## tiny p2p deployment: peer hits > 0, off-path bit-identical
	PYTHONPATH=src python -m repro p2p --smoke --instances 8 --pool 12 \
		--image-mib 64 --touched-mib 8

perf: sweep-smoke p2p-smoke scale-smoke churn-smoke lineage-smoke topo-smoke ## simulator throughput gates (~2 min)
	PYTHONPATH=src python benchmarks/bench_simperf.py
	PYTHONPATH=src python benchmarks/bench_scale.py
	PYTHONPATH=src python benchmarks/bench_churn.py
	PYTHONPATH=src python benchmarks/bench_lineage.py
	PYTHONPATH=src python benchmarks/bench_topo.py

scale:           ## n in {64,256,512} scale benchmark vs BENCH_scale.json (~1 min)
	PYTHONPATH=src python benchmarks/bench_scale.py

scale-smoke:     ## tiny-n scale-benchmark harness check (asserts gate logic)
	PYTHONPATH=src python benchmarks/bench_scale.py --smoke

churn:           ## tracked churn grids (policies + GC ablation) vs BENCH_churn.json (~2 min)
	PYTHONPATH=src python benchmarks/bench_churn.py

churn-smoke:     ## tiny-n churn harness check (asserts gate logic + CLI smoke)
	PYTHONPATH=src python benchmarks/bench_churn.py --smoke
	PYTHONPATH=src python -m repro churn --smoke --deploys 10 --rate 3 --gc-interval 20

lineage:         ## restore-vs-depth grid (compaction on/off) vs BENCH_lineage.json (~10 s)
	PYTHONPATH=src python benchmarks/bench_lineage.py

lineage-smoke:   ## tiny-depth lineage harness check (asserts gate logic + CLI smoke)
	PYTHONPATH=src python benchmarks/bench_lineage.py --smoke
	PYTHONPATH=src python -m repro lineage --smoke --depth 4 --compact

topo:            ## rack sweep (locality x oversubscription) vs BENCH_topo.json (~1 min)
	PYTHONPATH=src python benchmarks/bench_topo.py

topo-smoke:      ## tiny-fabric topology harness check (asserts gate logic + CLI smoke)
	PYTHONPATH=src python benchmarks/bench_topo.py --smoke
	PYTHONPATH=src python -m repro topo --smoke --racks 4

examples:
	python examples/quickstart.py
	python examples/multideployment.py
	python examples/debug_cloning.py
	python examples/montecarlo_suspend_resume.py

clean:           ## drop caches only; tracked figure artifacts stay put
	rm -rf .pytest_cache benchmarks/results/cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
