#!/usr/bin/env python3
"""Quickstart: mount a repository image, write to it, CLONE + COMMIT.

Builds a small simulated cluster with a BlobSeer repository, uploads a VM
image, lazily mounts it on one compute node through the mirroring VFS,
modifies it, snapshots it with the CLONE/COMMIT primitives, and finally
reads the published snapshot back from a *different* node to show that every
snapshot is a standalone raw image.

Run: ``python examples/quickstart.py``
"""

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB, MiB, fmt_size, fmt_time
from repro.core import mount
from repro.simkit.host import Fabric


def main() -> None:
    # --- build a 8-node cluster and deploy the versioning repository -------
    fabric = Fabric(seed=42)
    nodes = [fabric.add_host(f"node{i}") for i in range(8)]
    manager = fabric.add_host("manager")
    repo = BlobSeerDeployment(fabric, data_hosts=nodes, meta_hosts=nodes,
                              vmanager_host=manager)

    # --- store a 32 MiB image, striped in 256 KiB chunks --------------------
    image_bytes = bytes((i * 37 + 11) % 256 for i in range(32 * MiB))
    snap = repo.seed_blob(Payload.from_bytes(image_bytes), chunk_size=256 * KiB)
    print(f"seeded image: blob {snap.blob_id} v{snap.version}, "
          f"{fmt_size(snap.size)} in {fmt_size(snap.chunk_size)} chunks")

    def scenario():
        # --- lazily mount the image on node0 (no data copied up front) -----
        handle = yield from mount(nodes[0], repo, snap.blob_id, snap.version)
        t0 = fabric.env.now
        first = yield from handle.read(0, 4 * KiB)  # boot sector
        print(f"read boot sector in {fmt_time(fabric.env.now - t0)} "
              f"(mirrored {fmt_size(handle.modmgr.mirrored_bytes())} so far)")
        assert first.to_bytes() == image_bytes[: 4 * KiB]

        # --- writes always stay local ---------------------------------------
        yield from handle.write(1 * MiB, Payload.from_bytes(b"hello from node0"))
        back = yield from handle.read(1 * MiB, 16)
        print(f"read-your-writes: {back.to_bytes().decode()!r}")

        # --- snapshot: CLONE once, then COMMIT the local modifications ------
        clone = yield from handle.ioctl_clone()
        commit = yield from handle.ioctl_commit()
        print(f"snapshot published: blob {commit.blob_id} v{commit.version} "
              f"(clone of blob {snap.blob_id})")
        return commit

    commit = fabric.run(fabric.env.process(scenario()))

    # --- the snapshot is a standalone image readable anywhere ---------------
    def read_elsewhere():
        reader = repo.client(nodes[5])
        data = yield from reader.read(commit.blob_id, commit.version, 1 * MiB, 16)
        return data

    data = fabric.run(fabric.env.process(read_elsewhere()))
    print(f"node5 reads the snapshot: {data.to_bytes().decode()!r}")

    stored = repo.stored_bytes()
    print(f"repository stores {fmt_size(stored)} for 2 images "
          f"(diff-only snapshotting: {fmt_size(stored - 32 * MiB)} beyond the base)")


if __name__ == "__main__":
    main()
