"""The cloud middleware / control API (§3.2, Fig. 1).

A thin orchestration facade over the deployment and snapshotting runners:
what a Nimbus-style central service would expose to clients. It covers the
management tasks the paper lists — deploying an image on a set of compute
nodes, snapshotting individual instances or the whole set, terminating, and
resuming snapshots on (possibly different) nodes — plus the fine-grained
per-instance CLONE/COMMIT control the debugging use-case relies on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..common.errors import MiddlewareError
from ..vmsim.backends import MirrorBackend, SnapshotResult
from ..vmsim.hypervisor import VMInstance
from ..vmsim.image import VmImage
from .cluster import Cloud
from .deployment import DeploymentResult, deploy, seed_image
from .snapshotting import SnapshotCampaignResult, snapshot_all


class CloudMiddleware:
    """Client-facing control API of the simulated cloud."""

    def __init__(self, cloud: Cloud):
        self.cloud = cloud
        self._idents: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # image management
    # ------------------------------------------------------------------ #
    def upload_image(self, image: VmImage) -> dict:
        """Store the initial image in the repository (client upload)."""
        self._idents = seed_image(self.cloud, image)
        return self._idents

    # ------------------------------------------------------------------ #
    # deployment management
    # ------------------------------------------------------------------ #
    def deploy_set(
        self, image: VmImage, n_instances: int, approach: str = "mirror", **kwargs
    ) -> DeploymentResult:
        """Deploy ``n_instances`` VMs from the image (multideployment)."""
        if self._idents is None:
            self.upload_image(image)
        return deploy(self.cloud, image, n_instances, approach, idents=self._idents, **kwargs)

    def p2p_stats(self) -> Optional[dict]:
        """Cumulative peer-exchange stats (None if the cloud has no p2p)."""
        if self.cloud.p2p is None:
            return None
        return self.cloud.p2p.stats()

    def terminate_set(self, vms: Sequence[VMInstance]) -> None:
        """Shut every instance down (closes backends, persists mirror state)."""
        env = self.cloud.env
        procs = [env.process(vm.shutdown(), name=f"stop-{vm.name}") for vm in vms]
        self.cloud.run(env.all_of(procs))

    # ------------------------------------------------------------------ #
    # snapshot management
    # ------------------------------------------------------------------ #
    def snapshot_set(self, vms: Sequence[VMInstance], approach: str = "mirror") -> SnapshotCampaignResult:
        """Global snapshot: CLONE+COMMIT (or qcow2 copy-back) on all instances."""
        return snapshot_all(self.cloud, vms, approach)

    def snapshot_instance(self, vm: VMInstance) -> SnapshotResult:
        """Fine-grained control: snapshot a single instance."""
        out = {}

        def one():
            out["snap"] = yield from vm.backend.snapshot()

        self.cloud.run(self.cloud.env.process(one(), name=f"snap-{vm.name}"))
        return out["snap"]

    # ------------------------------------------------------------------ #
    # resume (redeploy snapshots, possibly on fresh nodes)
    # ------------------------------------------------------------------ #
    def resume_set(
        self,
        snapshots: Sequence[SnapshotResult],
        nodes: Sequence,
        name_prefix: str = "resumed",
    ) -> List[VMInstance]:
        """Mount each mirror snapshot on a node and return fresh instances.

        Only snapshots produced by the mirror approach are resumable this
        way (``blob<id>@v<version>`` identifiers); qcow2 resumes go through
        a new ``Qcow2PvfsBackend`` with the snapshot as a local file, which
        the Fig. 8 benchmark constructs explicitly.
        """
        if self.cloud.blobseer is None:
            raise MiddlewareError("cloud built without BlobSeer")
        if len(snapshots) > len(nodes):
            raise MiddlewareError("not enough nodes to resume onto")
        vms: List[VMInstance] = []
        for i, (snap, node) in enumerate(zip(snapshots, nodes)):
            ident = snap.ident
            if not ident.startswith("blob"):
                raise MiddlewareError(f"cannot resume non-mirror snapshot {ident!r}")
            blob_part, version_part = ident[4:].split("@v")
            backend = MirrorBackend(
                node,
                self.cloud.blobseer,
                int(blob_part),
                int(version_part),
                self.cloud.calib.fuse,
                path=f"/mirror/{name_prefix}-{i:03d}",
            )
            vm = VMInstance(
                f"{name_prefix}-{i:03d}",
                node,
                backend,
                self.cloud.calib.boot,
                self.cloud.fabric.rng.get("vm-resume", i),
            )
            vms.append(vm)
        return vms
