"""Sanity tests for the calibrated testbed model (paper §5.1 values)."""

import dataclasses

from repro.calibration import DEFAULT, Calibration, ImageSpec
from repro.calibration import Testbed as CalibTestbed
from repro.common.units import GiB, KiB, MB, MiB


class TestPaperValues:
    def test_testbed_matches_section_5_1(self):
        tb = DEFAULT.testbed
        assert tb.nic_bandwidth == 117.5 * MB  # measured TCP throughput
        assert tb.network_latency == 1e-4  # ~0.1 ms
        assert tb.disk_read_bandwidth == 55 * MB
        assert tb.ram_per_node == 8 * GiB

    def test_image_matches_eval(self):
        img = DEFAULT.image
        assert img.size == 2 * GiB
        assert img.chunk_size == 256 * KiB
        # ~12 GB PVFS traffic for 110 instances -> ~109 MiB touched per boot
        assert 100 * MiB <= img.boot_touched_bytes <= 120 * MiB

    def test_boot_skew_sources(self):
        boot = DEFAULT.boot
        # randomized hypervisor init spans enough to create ~100 ms skews
        assert boot.hypervisor_init_max - boot.hypervisor_init_min >= 0.5
        assert boot.cpu_seconds > 0

    def test_fuse_asymmetries(self):
        fuse = DEFAULT.fuse
        assert fuse.mmap_write_bandwidth > 1.5 * fuse.hypervisor_write_bandwidth
        assert fuse.per_op_overhead > fuse.local_per_op_overhead
        assert fuse.data_op_overhead < fuse.per_op_overhead

    def test_frozen_immutable(self):
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT.testbed.nic_bandwidth = 1.0


class TestOverrides:
    def test_custom_image_spec(self):
        calib = Calibration(
            image=ImageSpec(size=64 * MiB, chunk_size=64 * KiB, boot_touched_bytes=8 * MiB)
        )
        assert calib.image.size == 64 * MiB
        assert calib.testbed == DEFAULT.testbed  # other sections untouched

    def test_custom_testbed(self):
        calib = Calibration(testbed=CalibTestbed(disk_seek_time=0.001))
        assert calib.testbed.disk_seek_time == 0.001
        assert calib.image == DEFAULT.image
