"""Unit tests for the bounded per-node peer chunk cache."""

import pytest

from repro.common.errors import StorageError
from repro.common.payload import Payload
from repro.p2p import PeerChunkCache

CHUNK = 1024


def payload(size=CHUNK, fill=0):
    return Payload.from_bytes(bytes([fill % 256]) * size)


class TestBasics:
    def test_roundtrip(self):
        cache = PeerChunkCache(4 * CHUNK)
        p = payload(fill=7)
        assert cache.put(1, p)
        assert cache.get(1) is p
        assert 1 in cache
        assert len(cache) == 1
        assert cache.used_bytes == CHUNK

    def test_miss_returns_none(self):
        cache = PeerChunkCache(CHUNK)
        assert cache.get(99) is None
        assert 99 not in cache

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(StorageError):
            PeerChunkCache(0)
        with pytest.raises(StorageError):
            PeerChunkCache(-1)

    def test_reinsert_does_not_double_count(self):
        cache = PeerChunkCache(4 * CHUNK)
        cache.put(1, payload())
        cache.put(1, payload())
        assert cache.used_bytes == CHUNK
        assert cache.insertions == 1

    def test_put_many_counts_accepted(self):
        cache = PeerChunkCache(2 * CHUNK)
        n = cache.put_many([(i, payload(fill=i)) for i in range(3)])
        assert n == 3  # all accepted; the first was evicted to fit
        assert len(cache) == 2


class TestEviction:
    def test_lru_order(self):
        cache = PeerChunkCache(3 * CHUNK)
        for key in (1, 2, 3):
            cache.put(key, payload(fill=key))
        cache.get(1)  # refresh: 2 is now the oldest
        cache.put(4, payload(fill=4))
        assert 2 not in cache
        assert all(k in cache for k in (1, 3, 4))
        assert cache.evictions == 1

    def test_eviction_keeps_accounting_exact(self):
        cache = PeerChunkCache(2 * CHUNK)
        for key in range(5):
            cache.put(key, payload(fill=key))
        assert cache.used_bytes == 2 * CHUNK
        assert len(cache) == 2
        assert cache.evictions == 3

    def test_oversize_chunk_rejected_not_thrashing(self):
        cache = PeerChunkCache(2 * CHUNK)
        cache.put(1, payload())
        assert not cache.put(2, payload(size=3 * CHUNK))
        # the uncacheable chunk did not flush the existing entry
        assert 1 in cache
        assert cache.used_bytes == CHUNK

    def test_clear_drops_entries_keeps_lifetime_stats(self):
        cache = PeerChunkCache(2 * CHUNK)
        for key in range(4):
            cache.put(key, payload(fill=key))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert cache.insertions == 4
        assert cache.evictions == 2
