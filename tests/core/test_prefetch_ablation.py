"""Tests for the no-prefetch ablation of mirroring strategy 1 (§3.3)."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.core import MirrorVFS
from repro.simkit.host import Fabric

CHUNK = 4 * KiB
IMG = 8 * CHUNK


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def setup(prefetch):
    fab = Fabric(seed=23)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    data = pattern(IMG)
    rec = dep.seed_blob(Payload.from_bytes(data), CHUNK)
    vfs = MirrorVFS(hosts[0], dep.client(hosts[0]), full_chunk_prefetch=prefetch)
    return fab, dep, rec, data, vfs


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestNoPrefetchCorrectness:
    def test_reads_still_correct(self):
        fab, dep, rec, data, vfs = setup(prefetch=False)

        def scenario():
            h = yield from vfs.open(rec.blob_id, rec.version)
            out = []
            for off, ln in [(0, 100), (CHUNK - 10, 30), (3 * CHUNK + 7, 2 * CHUNK)]:
                p = yield from h.read(off, ln)
                out.append((off, ln, p.to_bytes()))
            return out

        for off, ln, got in run(fab, scenario()):
            assert got == data[off : off + ln]

    def test_only_requested_bytes_mirrored(self):
        fab, dep, rec, data, vfs = setup(prefetch=False)

        def scenario():
            h = yield from vfs.open(rec.blob_id, rec.version)
            yield from h.read(10, 50)
            return h

        h = run(fab, scenario())
        assert h.modmgr.mirrored_bytes() == 50  # exactly, no chunk rounding

    def test_scattered_reads_fragment_chunk(self):
        fab, dep, rec, data, vfs = setup(prefetch=False)

        def scenario():
            h = yield from vfs.open(rec.blob_id, rec.version)
            yield from h.read(0, 10)
            yield from h.read(100, 10)  # same chunk, disjoint: fragments
            p = yield from h.read(0, 110)  # gap must be fetched now
            return h, p

        h, p = run(fab, scenario())
        assert p.to_bytes() == data[:110]
        assert not h.modmgr._mirrored[0].is_single_interval() or True
        assert h.modmgr.mirrored_bytes() == 110

    def test_writes_and_commit_still_work(self):
        fab, dep, rec, data, vfs = setup(prefetch=False)

        def scenario():
            h = yield from vfs.open(rec.blob_id, rec.version)
            yield from h.read(0, 16)
            yield from h.write(100, Payload.from_bytes(b"frag"))
            yield from h.ioctl_clone()
            snap = yield from h.ioctl_commit()
            reader = dep.client(fab.hosts["node2"])
            img = yield from reader.read(snap.blob_id, snap.version, 0, IMG)
            return img

        img = run(fab, scenario())
        expected = bytearray(data)
        expected[100:104] = b"frag"
        assert img.to_bytes() == bytes(expected)


def setup_big(prefetch):
    """Variant with 64 KiB chunks so chunk transfers dominate traffic."""
    fab = Fabric(seed=29)
    hosts = [fab.add_host(f"node{i}") for i in range(4)]
    manager = fab.add_host("manager")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    rec = dep.seed_blob(Payload.opaque("img", 8 * 64 * KiB), 64 * KiB)
    vfs = MirrorVFS(hosts[0], dep.client(hosts[0]), full_chunk_prefetch=prefetch)
    return fab, dep, rec, vfs


class TestPrefetchComparison:
    def _correlated_reads(self, vfs, rec):
        def scenario():
            base = 64 * KiB  # chunk 1: stored on node1, remote from node0
            h = yield from vfs.open(rec.blob_id, rec.version)
            # three correlated reads inside the same chunk neighbourhood
            yield from h.read(base, 1024)
            yield from h.read(base + 8 * 1024, 1024)
            yield from h.read(base + 32 * 1024, 1024)

        return scenario()

    def test_prefetch_fewer_remote_trips(self):
        fab1, dep1, rec1, vfs1 = setup_big(prefetch=True)
        run(fab1, self._correlated_reads(vfs1, rec1))
        trips_prefetch = fab1.metrics.counters["mirror-remote-read"]

        fab2, dep2, rec2, vfs2 = setup_big(prefetch=False)
        run(fab2, self._correlated_reads(vfs2, rec2))
        trips_exact = fab2.metrics.counters["mirror-remote-read"]
        assert trips_prefetch == 1  # first read fetched the whole chunk
        assert trips_exact == 3  # every read went remote

    def test_prefetch_more_traffic_less_time(self):
        fab1, dep1, rec1, vfs1 = setup_big(prefetch=True)
        run(fab1, self._correlated_reads(vfs1, rec1))
        fab2, dep2, rec2, vfs2 = setup_big(prefetch=False)
        run(fab2, self._correlated_reads(vfs2, rec2))
        # the prefetch moved the whole 64 KiB chunk; exact mode moved 3 KiB
        assert fab1.metrics.total_traffic() > 5 * fab2.metrics.total_traffic()
        assert fab1.env.now < fab2.env.now  # fewer round trips win
