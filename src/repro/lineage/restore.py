"""Restore-to-version: boot a VM *back* from any historical snapshot.

The forward path (deploy, snapshot) never needs more than the latest
version; going back means reopening an arbitrary point of a snapshot
chain. :func:`restore_to_version` is a simulation process that:

1. **pins** the source version at the version manager — a refcounted lease
   that defers any concurrent retention ``delete_version`` / teardown
   ``delete_blob`` until the restore is done (see
   :meth:`~repro.blobseer.vmanager.BlobRegistry.pin_version`);
2. **scans** the ancestry chain (``lineage.scan``): one ``lineage_entry``
   RPC per hop from the target back to its genesis, honoring compaction
   skip pointers. This is the depth-dependent cost of restore — the
   analogue of opening each backing file of a qcow2 chain — and exactly
   what :mod:`~repro.lineage.compact` exists to bound;
3. for a **retired** source, verifies its chunks still exist on the data
   providers (a version unpublished *and* swept by GC is unrestorable —
   :class:`~repro.common.errors.LineageError`) and pins the chunks and
   metadata nodes in-flight so a sweep racing the restore cannot reclaim
   them mid-clone;
4. **clones** the source through the lineage log (``clone_lineage``),
   publishing the restored branch as a brand-new lineage head whose parent
   edge points at the historical version — rollback as a branch, never a
   rewrite;
5. opens a lazy :class:`~repro.vmsim.backends.MirrorBackend` on the clone
   (the p2p fetch path is reused automatically when the deployment has a
   peer network) and, when an image is supplied, boots a VM from it.

Restore latency is reported *excluding* the guest boot (scan + pin +
clone + VFS open); the boot time rides along separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..blobseer.metadata import reachable_nodes
from ..common.errors import LineageError
from ..simkit import rpc
from ..vmsim.backends import MirrorBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..blobseer.service import BlobSeerDeployment
    from ..simkit.host import Host


@dataclass
class RestoreResult:
    """Outcome of one restore-to-version."""

    #: the historical snapshot that was restored
    source: Tuple[int, int]
    #: the restored branch head (a fresh clone blob, version 1)
    blob_id: int
    version: int
    #: ancestry hops the scan paid (one lineage_entry RPC each)
    scan_hops: int
    #: the walked chain, target first, genesis last
    chain: Tuple[Tuple[int, int], ...]
    #: whether the source was already unpublished when restored
    retired_source: bool
    # -- simulated timings (seconds) ---------------------------------- #
    scan_time: float = 0.0
    clone_time: float = 0.0
    open_time: float = 0.0
    #: pin + scan + clone + VFS open (excludes the guest boot)
    restore_time: float = 0.0
    boot_time: Optional[float] = None
    # -- live objects (not serialized anywhere) ------------------------ #
    backend: Optional[MirrorBackend] = field(default=None, repr=False)
    vm: Optional[object] = field(default=None, repr=False)


def _scan_chain(dep: "BlobSeerDeployment", host: "Host", blob_id: int, version: int):
    """Walk the ancestry via per-hop version-manager RPCs; returns entries."""
    entries = []
    key: Optional[Tuple[int, int]] = (blob_id, version)
    seen = set()
    while key is not None:
        if key in seen:
            raise LineageError(f"lineage cycle through blob {key[0]} v{key[1]}")
        seen.add(key)
        entry = yield from rpc.call(
            host, dep.vmanager_host, "blob-vmgr", "lineage_entry", key[0], key[1]
        )
        entries.append(entry)
        key = entry.next_hop()
    return entries


def _verify_chunks(dep: "BlobSeerDeployment", root, blob_id: int, version: int):
    """Every chunk of a retired source must still sit on some provider."""
    for nid in reachable_nodes(dep.metadata, root):
        ref = dep.metadata.get(nid).ref
        if ref is None:
            continue
        if not any(
            dep.data_services[name].store.has(ref.key) for name in ref.providers
        ):
            raise LineageError(
                f"blob {blob_id} v{version} cannot be restored: chunk "
                f"{ref.key} was garbage-collected after the version retired"
            )


def restore_to_version(
    dep: "BlobSeerDeployment",
    host: "Host",
    blob_id: int,
    version: int,
    *,
    image=None,
    boot_model=None,
    vm_rng=None,
    trace=None,
    fuse=None,
    path: Optional[str] = None,
    name: Optional[str] = None,
    full_chunk_prefetch: bool = True,
):
    """Process: restore ``(blob, version)`` on ``host``; returns the result.

    With ``image`` (plus ``boot_model``, ``vm_rng`` and a boot ``trace``)
    the restored clone is booted through a fresh
    :class:`~repro.vmsim.hypervisor.VMInstance`; without it the backend is
    opened and handed back unbooted (engines that drive their own guest).
    """
    env = host.env
    tracer = host.fabric.tracer
    span = None
    if tracer.enabled:
        span = tracer.start(
            "lineage.restore", "lineage",
            blob=blob_id, version=version, host=host.name,
        )
    t0 = env.now
    pinned_keys: List[int] = []
    pinned_nodes: List[int] = []
    pinned_version = False
    try:
        # 1. lease the source so retention/teardown deletes defer
        yield from rpc.call(
            host, dep.vmanager_host, "blob-vmgr", "pin_version", blob_id, version
        )
        pinned_version = True

        # 2. ancestry scan: the depth-dependent chain-open cost
        t_scan = env.now
        if tracer.enabled:
            with tracer.start("lineage.scan", "lineage", blob=blob_id,
                              version=version) as scan_span:
                entries = yield from _scan_chain(dep, host, blob_id, version)
                scan_span.set(hops=len(entries))
        else:
            entries = yield from _scan_chain(dep, host, blob_id, version)
        scan_time = env.now - t_scan
        target = entries[0]

        # 3. a retired source is only restorable until GC reclaims it;
        #    pin its chunks/nodes so a sweep racing the clone cannot win
        if target.retired:
            for nid in reachable_nodes(dep.metadata, target.root):
                pinned_nodes.append(nid)
                ref = dep.metadata.get(nid).ref
                if ref is not None:
                    pinned_keys.append(ref.key)
            dep.pin_inflight(keys=pinned_keys, nodes=pinned_nodes)
            _verify_chunks(dep, target.root, blob_id, version)

        # 4. publish the restored branch as a new lineage head
        t_clone = env.now
        rec = yield from rpc.call(
            host, dep.vmanager_host, "blob-vmgr", "clone_lineage",
            blob_id, version,
        )
        clone_time = env.now - t_clone

        # 5. lazy mirror open on the clone (p2p path reused when enabled)
        t_open = env.now
        backend = MirrorBackend(
            host, dep, rec.blob_id, rec.version, fuse,
            path=path or f"/mirror/restore-b{blob_id}v{version}",
            full_chunk_prefetch=full_chunk_prefetch,
        )
        yield from backend.open()
        open_time = env.now - t_open
        restore_time = env.now - t0

        result = RestoreResult(
            source=(blob_id, version),
            blob_id=rec.blob_id,
            version=rec.version,
            scan_hops=len(entries),
            chain=tuple(e.key for e in entries),
            retired_source=bool(target.retired),
            scan_time=scan_time,
            clone_time=clone_time,
            open_time=open_time,
            restore_time=restore_time,
            backend=backend,
        )
        host.fabric.metrics.count("lineage-restore")

        if image is not None:
            from ..vmsim.hypervisor import VMInstance

            vm = VMInstance(
                name or f"restore-b{blob_id}v{version}", host, backend,
                boot_model, vm_rng,
            )
            yield from vm.boot(trace)
            result.vm = vm
            result.boot_time = vm.boot_time
        if span is not None:
            span.set(
                hops=result.scan_hops, restored_blob=rec.blob_id,
                retired_source=result.retired_source,
            )
        return result
    except BaseException as exc:
        if span is not None:
            span.set_error(exc)
        raise
    finally:
        # pure-state unpins: no simulated cost, never leaks a lease
        if pinned_keys or pinned_nodes:
            dep.unpin_inflight(keys=pinned_keys, nodes=pinned_nodes)
        if pinned_version:
            dep.registry.unpin_version(blob_id, version)
        if span is not None:
            span.finish()
