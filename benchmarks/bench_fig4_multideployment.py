"""Figure 4 — multideployment (paper §5.2).

One initial 2 GiB image deployed to N concurrent instances, N swept up to
110, for the three approaches. Panels:

* 4(a) average boot time per instance,
* 4(b) completion time to boot all instances (incl. initialization phase),
* 4(c) speedup of our approach over both baselines,
* 4(d) total network traffic.

Each sweep runs once (``pedantic`` with one round — the simulation is
deterministic); the reported benchmark time is the harness cost of the whole
sweep. The point loop goes through the parallel sweep runner (jobs/cache
from the ``REPRO_BENCH_*`` environment). Panels assert the paper's
qualitative shapes.
"""

import pytest

from repro.analysis import Figure, Series, ascii_chart, check_shape, render_figure, speedup

from common import active_profile, deploy_specs, emit, figure_data, run_sweep

PROFILE = active_profile()


def _sweep(approach):
    points = run_sweep(deploy_specs(PROFILE, approach, seed=1))
    return {p.spec.n: p for p in points}


@pytest.mark.parametrize("approach", ["mirror", "qcow2-pvfs", "prepropagation"])
def test_fig4_sweep(benchmark, sweep_cache, approach):
    """Run the instance-count sweep for one approach (feeds all panels)."""
    result = benchmark.pedantic(lambda: _sweep(approach), rounds=1, iterations=1)
    sweep_cache[("fig4", approach)] = result
    assert all(len(r.boot_times) == n for n, r in result.items())


def _series(sweep_cache, metric):
    out = {}
    for approach in ("prepropagation", "qcow2-pvfs", "mirror"):
        sweep = sweep_cache[("fig4", approach)]
        s = Series(approach)
        for n, res in sorted(sweep.items()):
            s.add(n, metric(res))
        out[approach] = s
    return out


def test_fig4a_avg_boot_time(benchmark, sweep_cache):
    series = benchmark.pedantic(
        lambda: _series(sweep_cache, lambda r: r.avg_boot_time), rounds=1, iterations=1
    )
    fig = Figure("fig4a", "Average time to boot per instance", "instances", "seconds")
    for s in series.values():
        fig.add_series(s)
    checks = [
        # prepropagation boots from a local copy: flat, lowest
        check_shape(
            "prepropagation flat (max/min < 1.35)",
            series["prepropagation"].max() / min(series["prepropagation"].y) < 1.35,
        ),
        check_shape(
            "mirror grows slower than qcow2-over-PVFS",
            (series["mirror"].last() / series["mirror"].y[0])
            < (series["qcow2-pvfs"].last() / series["qcow2-pvfs"].y[0]),
        ),
        check_shape(
            "remote-backed approaches above prepropagation at max N",
            series["mirror"].last() > series["prepropagation"].last()
            and series["qcow2-pvfs"].last() > series["mirror"].last(),
        ),
    ]
    emit("fig4a", render_figure(fig) + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_fig4b_completion_time(benchmark, sweep_cache):
    series = benchmark.pedantic(
        lambda: _series(sweep_cache, lambda r: r.completion_time), rounds=1, iterations=1
    )
    fig = Figure("fig4b", "Completion time to boot all instances", "instances", "seconds")
    for s in series.values():
        fig.add_series(s)
    checks = [
        check_shape(
            "prepropagation completion grows strongly with N (broadcast)",
            series["prepropagation"].last()
            > (3 if PROFILE.name == "paper" else 1.5) * series["prepropagation"].y[0],
        ),
        check_shape(
            "mirror completes first at every N",
            all(
                series["mirror"].at(n) < series["qcow2-pvfs"].at(n)
                and series["mirror"].at(n) < series["prepropagation"].at(n)
                for n in PROFILE.instance_counts
            ),
        ),
    ]
    emit("fig4b", render_figure(fig) + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_fig4c_speedup(benchmark, sweep_cache):
    def compute():
        series = _series(sweep_cache, lambda r: r.completion_time)
        return (
            speedup(series["prepropagation"], series["mirror"], "vs taktuk prepropagation"),
            speedup(series["qcow2-pvfs"], series["mirror"], "vs qcow2 over PVFS"),
        )

    vs_taktuk, vs_qcow2 = benchmark.pedantic(compute, rounds=1, iterations=1)
    fig = Figure("fig4c", "Speedup of completion time (our approach)", "instances", "x")
    fig.add_series(vs_taktuk)
    fig.add_series(vs_qcow2)
    last_n = PROFILE.instance_counts[-1]
    checks = [
        check_shape(
            f"speedup vs prepropagation large at scale (paper: up to ~25; got {vs_taktuk.max():.1f})",
            vs_taktuk.max() > (15 if PROFILE.name == "paper" else 4),
        ),
        check_shape(
            f"speedup vs qcow2-over-PVFS ~2 at N={last_n} (got {vs_qcow2.at(last_n):.2f})",
            1.5 < vs_qcow2.at(last_n) < 3.5,
        ),
        check_shape(
            "speedup vs qcow2 slowly increases with N",
            vs_qcow2.last() > vs_qcow2.y[0],
        ),
    ]
    emit("fig4c", render_figure(fig, fmt="{:10.2f}") + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)


def test_fig4d_total_network_traffic(benchmark, sweep_cache):
    series = benchmark.pedantic(
        lambda: _series(sweep_cache, lambda r: r.total_traffic / 1e9), rounds=1, iterations=1
    )
    fig = Figure("fig4d", "Total network traffic", "instances", "GB")
    for s in series.values():
        fig.add_series(s)
    last_n = PROFILE.instance_counts[-1]
    reduction = 1 - series["mirror"].at(last_n) / series["prepropagation"].at(last_n)
    checks = [
        check_shape(
            f"~90% traffic reduction vs prepropagation (got {reduction:.0%})",
            reduction > 0.85,
        ),
        check_shape(
            "mirror slightly above qcow2 (chunk-prefetch overhead)",
            1.0
            < series["mirror"].at(last_n) / series["qcow2-pvfs"].at(last_n)
            < 1.35,
        ),
        check_shape(
            "all approaches grow linearly with N (monotone)",
            all(s.is_monotonic_nondecreasing() for s in series.values()),
        ),
    ]
    emit("fig4d", render_figure(fig) + "\n\n" + ascii_chart(fig) + "\n" + "\n".join(checks), figure_data(fig, checks))
    assert all(c.startswith("[PASS]") for c in checks), "\n".join(checks)
