"""Unit helpers and conversions used throughout the reproduction.

Conventions (uniform across the whole code base):

* **sizes** are integers in bytes,
* **times** are floats in seconds,
* **rates** are floats in bytes per second.

The constants below exist so that calibration values and test fixtures read
like the paper ("2 GB image", "256 KB chunks", "117.5 MB/s") instead of raw
integers.
"""

from __future__ import annotations

#: One kibibyte (2**10 bytes).
KiB: int = 1024
#: One mebibyte (2**20 bytes).
MiB: int = 1024 * KiB
#: One gibibyte (2**30 bytes).
GiB: int = 1024 * MiB

#: Decimal variants, used for link rates quoted in MB/s by the paper.
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: One millisecond / microsecond, in seconds.
MILLISECONDS: float = 1e-3
MICROSECONDS: float = 1e-6


def fmt_size(nbytes: float) -> str:
    """Render a byte count in human units, e.g. ``fmt_size(2*GiB) == '2.0 GiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration, e.g. ``fmt_time(0.0021) == '2.1 ms'``."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a transfer rate, e.g. ``fmt_rate(117.5 * MB) == '117.5 MB/s'``."""
    return f"{bytes_per_second / MB:.1f} MB/s"
