"""Placement and admission control for the churn engine.

The scheduler owns the cluster's capacity model — every compute node offers
``slots_per_node`` instance slots — and decides, for each
:class:`~repro.churn.arrivals.DeployRequest`, *where* it runs (placement
policy) and *whether* it runs at all (admission control: a bounded FIFO
pending queue; requests arriving with the queue full are rejected and
counted, the open-loop analogue of a 503).

Placement policies are plain functions registered in :data:`POLICIES`; all
of them are strictly deterministic (ties break on the lowest node index):

* ``first-fit`` — the lowest-indexed node with a free slot (packs the left
  end of the pool; good cache reuse, bad load spread);
* ``least-loaded`` — the free node with the fewest resident instances
  (spreads load; indifferent to data locality);
* ``locality`` — prefer free nodes whose *peer chunk caches* already hold
  the tenant's image chunks (see :mod:`repro.p2p`), falling back to
  recently-hosted-tenant affinity when the cloud runs without the p2p
  overlay, and to least-loaded among equals. This is the policy that turns
  the cooperative-exchange overlay into a placement signal: booting where
  the image's chunks already sit short-circuits most remote fetches;
* ``rack-affinity`` — prefer free nodes in *racks* already hosting the
  tenant (see :mod:`repro.topo`), then the locality score, then least
  loaded. On a hierarchical fabric this keeps a tenant's instances — and
  therefore its peer-exchange traffic — inside as few racks as possible,
  so chunk fetches stay off the oversubscribed uplinks. Without a rack
  map it degrades to exactly the ``locality`` ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from .arrivals import DeployRequest


class LocalityMap:
    """The locality policy's scoring context.

    ``caches`` maps node name -> :class:`~repro.p2p.cache.PeerChunkCache`
    (``None`` when the cloud runs without p2p); ``tenant_keys`` maps tenant
    -> the frozen set of BlobSeer chunk keys of that tenant's base image.
    Affinity (which tenants a node hosted recently) is tracked either way
    and used as the fallback signal.
    """

    def __init__(
        self,
        node_names: List[str],
        caches: Optional[Dict[str, object]] = None,
        tenant_keys: Optional[Dict[int, FrozenSet[int]]] = None,
        rack_of: Optional[Dict[str, int]] = None,
    ):
        self.node_names = node_names
        self.caches = caches
        self.tenant_keys = tenant_keys if tenant_keys is not None else {}
        #: node index -> set of tenants whose instances ran there
        self.affinity: Dict[int, set] = {}
        #: node name -> rack id (None when the fabric is flat)
        self.rack_of = rack_of
        #: tenant -> set of racks currently/recently hosting it
        self.tenant_racks: Dict[int, set] = {}

    def note_hosted(self, node: int, tenant: int) -> None:
        self.affinity.setdefault(node, set()).add(tenant)
        if self.rack_of is not None:
            rack = self.rack_of.get(self.node_names[node], 0)
            self.tenant_racks.setdefault(tenant, set()).add(rack)

    def rack(self, node: int) -> int:
        if self.rack_of is None:
            return 0
        return self.rack_of.get(self.node_names[node], 0)

    def score(self, node: int, tenant: int) -> int:
        """Higher is better; 0 means no locality information."""
        score = 0
        if self.caches is not None:
            cache = self.caches.get(self.node_names[node])
            keys = self.tenant_keys.get(tenant)
            if cache is not None and keys:
                score = sum(1 for k in keys if k in cache)
        if tenant in self.affinity.get(node, ()):
            score += 1  # a warm local mirror/page cache beats a cold node
        return score


# --------------------------------------------------------------------------- #
# policies: (scheduler, request) -> node index among the free nodes
# --------------------------------------------------------------------------- #
def _free_nodes(sched: "Scheduler") -> List[int]:
    return [
        i for i, load in enumerate(sched.loads) if load < sched.slots_per_node
    ]


def _first_fit(sched: "Scheduler", req: DeployRequest) -> Optional[int]:
    free = _free_nodes(sched)
    return free[0] if free else None


def _least_loaded(sched: "Scheduler", req: DeployRequest) -> Optional[int]:
    free = _free_nodes(sched)
    if not free:
        return None
    return min(free, key=lambda i: (sched.loads[i], i))


def _locality(sched: "Scheduler", req: DeployRequest) -> Optional[int]:
    free = _free_nodes(sched)
    if not free:
        return None
    loc = sched.locality
    if loc is None:
        return min(free, key=lambda i: (sched.loads[i], i))
    # best locality score first, then least loaded, then lowest index
    return min(free, key=lambda i: (-loc.score(i, req.tenant), sched.loads[i], i))


def _rack_affinity(sched: "Scheduler", req: DeployRequest) -> Optional[int]:
    free = _free_nodes(sched)
    if not free:
        return None
    loc = sched.locality
    if loc is None:
        return min(free, key=lambda i: (sched.loads[i], i))
    if loc.rack_of is None:
        # no rack map: identical ordering to the plain locality policy
        return min(free, key=lambda i: (-loc.score(i, req.tenant), sched.loads[i], i))
    tenant_racks = loc.tenant_racks.get(req.tenant, ())
    return min(
        free,
        key=lambda i: (
            0 if loc.rack(i) in tenant_racks else 1,
            -loc.score(i, req.tenant),
            sched.loads[i],
            i,
        ),
    )


POLICIES: Dict[str, Callable[["Scheduler", DeployRequest], Optional[int]]] = {
    "first-fit": _first_fit,
    "least-loaded": _least_loaded,
    "locality": _locality,
    "rack-affinity": _rack_affinity,
}


class Scheduler:
    """Bounded-queue admission control + pluggable placement over N nodes."""

    def __init__(
        self,
        n_nodes: int,
        policy: str = "first-fit",
        slots_per_node: int = 1,
        max_queue: int = 16,
        locality: Optional[LocalityMap] = None,
    ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"pick one of {tuple(sorted(POLICIES))}"
            )
        self.policy_name = policy
        self._policy = POLICIES[policy]
        self.slots_per_node = slots_per_node
        self.max_queue = max_queue
        self.locality = locality
        self.loads: List[int] = [0] * n_nodes
        self.queue: Deque[DeployRequest] = deque()
        self.rejected = 0
        self.admitted = 0

    # ------------------------------------------------------------------ #
    @property
    def busy_slots(self) -> int:
        return sum(self.loads)

    @property
    def total_slots(self) -> int:
        return len(self.loads) * self.slots_per_node

    # ------------------------------------------------------------------ #
    def submit(self, req: DeployRequest) -> Tuple[str, Optional[int]]:
        """Admit a deploy: ``("placed", node)``, ``("queued", None)`` or
        ``("rejected", None)``."""
        if not self.queue:  # FIFO: nobody may overtake a waiting request
            node = self._policy(self, req)
            if node is not None:
                self.loads[node] += 1
                self.admitted += 1
                return "placed", node
        if len(self.queue) >= self.max_queue:
            self.rejected += 1
            return "rejected", None
        self.queue.append(req)
        self.admitted += 1
        return "queued", None

    def cancel(self, req_id: int) -> bool:
        """Drop a still-queued deploy (its teardown arrived first)."""
        for req in self.queue:
            if req.req_id == req_id:
                self.queue.remove(req)
                return True
        return False

    def release(self, node: int) -> List[Tuple[DeployRequest, int]]:
        """Free one slot on ``node``; drain the queue onto free capacity.

        Returns the newly placed ``(request, node)`` pairs, in FIFO order.
        """
        if self.loads[node] <= 0:
            raise ValueError(f"release on idle node {node}")
        self.loads[node] -= 1
        placed: List[Tuple[DeployRequest, int]] = []
        while self.queue:
            nxt = self.queue[0]
            where = self._policy(self, nxt)
            if where is None:
                break
            self.queue.popleft()
            self.loads[where] += 1
            placed.append((nxt, where))
        return placed
