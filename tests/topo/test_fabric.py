"""Unit tests for the hierarchical topology description."""

import pytest

from repro.common.units import MB
from repro.topo import Topology, build_topology
from repro.topo.fabric import CROSS_POD, CROSS_RACK, INTRA_RACK


class TestValidation:
    def test_racks_must_be_positive(self):
        with pytest.raises(ValueError):
            Topology(n_racks=0, rack_uplink=100 * MB)

    def test_uplink_must_be_positive(self):
        with pytest.raises(ValueError):
            Topology(n_racks=2, rack_uplink=0)

    def test_pod_tier_requires_pod_uplink(self):
        with pytest.raises(ValueError):
            Topology(n_racks=4, rack_uplink=100 * MB, racks_per_pod=2)

    def test_pod_tier_accepted_with_uplink(self):
        topo = Topology(
            n_racks=4, rack_uplink=100 * MB, racks_per_pod=2,
            pod_uplink=200 * MB,
        )
        assert topo.n_pods == 2


class TestPlacement:
    def test_unplaced_host_defaults_to_rack_zero(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        assert topo.rack("never-seen") == 0

    def test_place_blocked_splits_evenly(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        topo.place_blocked([f"h{i}" for i in range(8)])
        assert [topo.rack(f"h{i}") for i in range(8)] == [0] * 4 + [1] * 4

    def test_place_blocked_remainder_goes_to_last_rack(self):
        topo = Topology(n_racks=3, rack_uplink=100 * MB)
        topo.place_blocked([f"h{i}" for i in range(7)])
        racks = [topo.rack(f"h{i}") for i in range(7)]
        assert racks == [0, 0, 0, 1, 1, 1, 2]

    def test_explicit_place_overrides(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        topo.place("special", 1)
        assert topo.rack("special") == 1

    def test_place_rejects_unknown_rack(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        with pytest.raises(ValueError):
            topo.place("h", 2)


class TestScope:
    def test_same_rack(self):
        topo = Topology(n_racks=2, rack_uplink=100 * MB)
        topo.place("a", 0)
        topo.place("b", 0)
        topo.place("c", 1)
        assert topo.scope("a", "b") == INTRA_RACK
        assert topo.scope("a", "c") == CROSS_RACK
        assert topo.same_rack("a", "b")
        assert not topo.same_rack("a", "c")

    def test_cross_pod(self):
        topo = Topology(
            n_racks=4, rack_uplink=100 * MB, racks_per_pod=2,
            pod_uplink=200 * MB,
        )
        for i in range(4):
            topo.place(f"h{i}", i)
        assert topo.scope("h0", "h1") == CROSS_RACK  # same pod
        assert topo.scope("h0", "h3") == CROSS_POD

    def test_multi_rack_flag(self):
        assert not Topology(n_racks=1, rack_uplink=100 * MB).multi_rack
        assert Topology(n_racks=2, rack_uplink=100 * MB).multi_rack


class TestBuildTopology:
    def test_uplink_derived_from_oversubscription(self):
        nic = 125 * MB
        topo = build_topology(
            [f"n{i}" for i in range(16)], 4, nic, oversubscription=4.0
        )
        # 4 hosts/rack * 125 MB/s / 4 = one NIC's worth of uplink
        assert topo.rack_uplink == pytest.approx(4 * nic / 4.0)
        assert topo.oversubscription == 4.0

    def test_explicit_uplink_wins(self):
        topo = build_topology(
            [f"n{i}" for i in range(8)], 2, 125 * MB, rack_uplink=42 * MB
        )
        assert topo.rack_uplink == 42 * MB

    def test_infra_hosts_land_in_rack_zero(self):
        topo = build_topology(
            [f"n{i}" for i in range(8)], 2, 125 * MB,
            infra_hosts=("manager", "nfs-server"),
        )
        assert topo.rack("manager") == 0
        assert topo.rack("nfs-server") == 0
        assert topo.rack("n7") == 1

    def test_describe_mentions_shape(self):
        topo = build_topology([f"n{i}" for i in range(8)], 2, 125 * MB)
        text = topo.describe()
        assert "2 rack(s)" in text
