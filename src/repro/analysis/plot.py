"""Dependency-free ASCII line charts for the figure reports.

The benchmark harness runs in terminals without plotting stacks, so each
reproduced figure is rendered as a small ASCII chart next to its numeric
table — enough to eyeball the paper's curve shapes (flat vs growing, cross
points, who is on top) directly in ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

from typing import Dict, List

from .series import Figure, Series

#: marker characters assigned to series, in insertion order
MARKERS = "ox+*#@%&"


def ascii_chart(
    figure: Figure,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render a figure's series as an ASCII scatter/line chart."""
    all_x = [x for s in figure.series.values() for x in s.x]
    all_y = [y for s in figure.series.values() for y in s.y]
    if not all_x:
        return f"# {figure.figure_id}: (no data)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = 0.0, max(all_y)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def plot_point(x: float, y: float, marker: str) -> None:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - row  # origin at bottom
        if grid[row][col] == " ":
            grid[row][col] = marker
        elif grid[row][col] != marker:
            grid[row][col] = "?"  # overlapping series

    for (name, series), marker in zip(figure.series.items(), MARKERS):
        points = sorted(zip(series.x, series.y))
        # linear interpolation between measured points for a line feel
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            steps = max(2, int((x1 - x0) / x_span * width))
            for k in range(steps + 1):
                t = k / steps
                plot_point(x0 + t * (x1 - x0), y0 + t * (y1 - y0), marker)
        for x, y in points:
            plot_point(x, y, marker)

    lines = [f"{figure.y_label} (0 .. {y_hi:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {figure.x_label}: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(figure.series.items(), MARKERS)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
