"""PointSpec/PointResult: canonicalization, JSON round trips, accessors."""

import pytest

from repro.runner import PointResult, PointSpec


class TestPointSpec:
    def test_params_and_overrides_canonicalized(self):
        a = PointSpec(kind="deploy", profile="quick",
                      params={"b": 1, "a": 2}, overrides=[("z.y", 3), ("a.b", 4)])
        b = PointSpec(kind="deploy", profile="quick",
                      params=[("a", 2), ("b", 1)], overrides=(("a.b", 4), ("z.y", 3)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("a", 2), ("b", 1))

    def test_param_lookup(self):
        spec = PointSpec(kind="deploy", profile="quick", params={"mode": "x"})
        assert spec.param("mode") == "x"
        assert spec.param("missing", 42) == 42

    def test_json_round_trip(self):
        spec = PointSpec(kind="snapshot", profile="paper", approach="mirror",
                         n=20, seed=7, overrides={"image.chunk_size": 4096},
                         params={"diff_bytes": 123})
        again = PointSpec.from_json(spec.to_json())
        assert again == spec

    def test_label_names_the_point(self):
        spec = PointSpec(kind="deploy", profile="quick", approach="mirror", n=8)
        label = spec.label()
        for token in ("deploy", "quick", "mirror", "n=8", "seed=1"):
            assert token in label

    def test_picklable(self):
        import pickle

        spec = PointSpec(kind="deploy", profile="quick", approach="mirror", n=8)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestPointResult:
    def _result(self):
        spec = PointSpec(kind="deploy", profile="quick", approach="mirror", n=2)
        return PointResult(
            spec=spec,
            metrics={"avg_boot_time": 1.25, "completion_time": 2.5,
                     "total_traffic": 100, "init_time": 0.5},
            series={"boot_times": (1.0, 1.5)},
            counters={"mirror-remote-read": 7},
            event_count=123,
            wall_s=0.01,
        )

    def test_accessors_mirror_deployment_result(self):
        r = self._result()
        assert r.n_instances == 2
        assert r.boot_times == (1.0, 1.5)
        assert r.avg_boot_time == 1.25
        assert r.completion_time == 2.5
        assert r.total_traffic == 100
        assert r.init_time == 0.5

    def test_json_round_trip_is_exact(self):
        r = self._result()
        again = PointResult.from_json(r.to_json())
        assert again.spec == r.spec
        assert again.metrics == r.metrics
        assert again.series == r.series
        assert again.counters == r.counters
        assert again.event_count == r.event_count

    def test_metric_miss_names_available(self):
        r = self._result()
        with pytest.raises(KeyError, match="avg_boot_time"):
            r.metric("nope")

    def test_cached_flag_from_json(self):
        r = PointResult.from_json(self._result().to_json(), cached=True)
        assert r.cached
