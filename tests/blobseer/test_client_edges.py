"""Edge cases of the BLOB client API."""

import pytest

from repro.blobseer import BlobSeerDeployment
from repro.common.errors import UnknownBlobError
from repro.common.payload import Payload
from repro.common.units import KiB
from repro.simkit.host import Fabric

CHUNK = 4 * KiB


def pattern(n, seed=1):
    return bytes((i * 131 + seed * 17) % 256 for i in range(n))


def make(seed=91):
    fab = Fabric(seed=seed)
    hosts = [fab.add_host(f"n{i}") for i in range(3)]
    manager = fab.add_host("m")
    dep = BlobSeerDeployment(fab, hosts, hosts, manager)
    return fab, dep, hosts


def run(fab, gen):
    return fab.run(fab.env.process(gen))


class TestClientEdges:
    def test_zero_byte_read(self):
        fab, dep, hosts = make()
        rec = dep.seed_blob(Payload.from_bytes(pattern(4 * CHUNK)), CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            p = yield from client.read(rec.blob_id, rec.version, 100, 0)
            return p

        assert run(fab, scenario()).size == 0

    def test_write_to_unknown_blob(self):
        fab, dep, hosts = make()
        client = dep.client(hosts[0])

        def scenario():
            yield from client.write_chunks(42, {0: Payload.zeros(CHUNK)})

        with pytest.raises(UnknownBlobError):
            run(fab, scenario())

    def test_clone_of_empty_version_zero(self):
        fab, dep, hosts = make()
        client = dep.client(hosts[0])

        def scenario():
            blob = yield from client.create(4 * CHUNK, CHUNK)
            clone = yield from client.clone(blob, 0)
            p = yield from client.read(clone.blob_id, clone.version, 0, CHUNK)
            return p

        assert run(fab, scenario()).to_bytes() == b"\x00" * CHUNK

    def test_fetch_refs_empty(self):
        fab, dep, hosts = make()
        client = dep.client(hosts[0])

        def scenario():
            out = yield from client.fetch_refs({})
            return out

        assert run(fab, scenario()) == {}

    def test_snapshot_cache_serves_repeat_lookups(self):
        fab, dep, hosts = make()
        rec = dep.seed_blob(Payload.from_bytes(pattern(4 * CHUNK)), CHUNK)
        client = dep.client(hosts[0])

        def scenario():
            yield from client.read(rec.blob_id, rec.version, 0, 10)
            rpcs = fab.metrics.counters["rpc"]
            yield from client.read(rec.blob_id, rec.version, 0, 10)
            # only chunk fetch RPCs; no vmanager lookup, no metadata refetch
            return fab.metrics.counters["rpc"] - rpcs

        extra = run(fab, scenario())
        assert extra <= 1  # at most the chunk GET itself

    def test_latest_version_not_cached(self):
        """version=None must always consult the version manager (can change)."""
        fab, dep, hosts = make()
        rec = dep.seed_blob(Payload.from_bytes(pattern(2 * CHUNK)), CHUNK)
        client = dep.client(hosts[0])
        writer = dep.client(hosts[1])

        def scenario():
            first = yield from client.read(rec.blob_id, None, 0, CHUNK)
            yield from writer.write_chunks(
                rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, 9))}
            )
            second = yield from client.read(rec.blob_id, None, 0, CHUNK)
            return first, second

        first, second = run(fab, scenario())
        assert first.to_bytes() == pattern(2 * CHUNK)[:CHUNK]
        assert second.to_bytes() == pattern(CHUNK, 9)

    def test_concurrent_commits_serialized_by_version_manager(self):
        """Two clients committing to one blob get distinct, ordered versions."""
        fab, dep, hosts = make()
        rec = dep.seed_blob(Payload.from_bytes(pattern(4 * CHUNK)), CHUNK)
        out = {}

        def committer(name, host, seed):
            client = dep.client(host)

            def scenario():
                r = yield from client.write_chunks(
                    rec.blob_id, {0: Payload.from_bytes(pattern(CHUNK, seed))}
                )
                out[name] = r

            return scenario()

        p1 = fab.env.process(committer("a", hosts[0], 3))
        p2 = fab.env.process(committer("b", hosts[1], 4))
        fab.run(fab.env.all_of([p1, p2]))
        versions = {out["a"].version, out["b"].version}
        assert versions == {2, 3}  # both published, totally ordered
