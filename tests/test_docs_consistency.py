"""Keep the documentation honest: referenced artifacts must exist."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


class TestDesignDoc:
    def test_every_module_in_map_exists(self):
        text = (REPO / "DESIGN.md").read_text()
        block = text.split("```")[1]  # the module-map code block
        missing = []
        for line in block.splitlines():
            match = re.match(r"\s+(\w+/|\w+\.py)", line)
            if match and ".py" in line:
                rel = line.strip().split()[0]
                # reconstruct path: indentation encodes the package
                continue
        # simpler: every "name.py" token in the block exists somewhere in src/
        for name in set(re.findall(r"(\w+\.py)", block)):
            hits = list((REPO / "src").rglob(name))
            hits += list((REPO / "benchmarks").glob(name))
            if not hits:
                missing.append(name)
        assert not missing, f"DESIGN.md references missing modules: {missing}"

    def test_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for ref in re.findall(r"`benchmarks/(bench_\w+\.py)", text):
            assert (REPO / "benchmarks" / ref).exists(), ref

    def test_bench_test_names_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        fig4 = (REPO / "benchmarks" / "bench_fig4_multideployment.py").read_text()
        fig5 = (REPO / "benchmarks" / "bench_fig5_multisnapshotting.py").read_text()
        for name in re.findall(r"::(\w+)`", text):
            assert f"def {name}" in fig4 + fig5, name


class TestReadme:
    def test_examples_listed_exist(self):
        text = (REPO / "README.md").read_text()
        for ref in re.findall(r"examples/(\w+\.py)", text):
            assert (REPO / "examples" / ref).exists(), ref

    def test_docs_referenced_exist(self):
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            assert (REPO / doc).exists()


class TestExperimentsDoc:
    def test_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
            assert fig in text, f"EXPERIMENTS.md missing {fig}"
        for panel in ("4(a)", "4(b)", "4(c)", "4(d)", "5(a)", "5(b)"):
            assert panel in text, f"EXPERIMENTS.md missing panel {panel}"

    def test_deviations_documented(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "Deviations" in text


class TestChurnDocs:
    def test_design_doc_covers_churn_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "repro.churn" in text
        for mod in ("arrivals.py", "scheduler.py", "lifecycle.py",
                    "slo.py", "engine.py"):
            assert (REPO / "src" / "repro" / "churn" / mod).exists(), mod
            assert mod in text, f"DESIGN.md module map missing churn {mod}"

    def test_experiments_doc_covers_churn(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "churn" in text
        assert "BENCH_churn.json" in text

    def test_readme_quickstart_covers_churn(self):
        text = (REPO / "README.md").read_text()
        assert "python -m repro churn" in text
        assert "make churn-smoke" in text

    def test_tracked_churn_numbers_exist(self):
        import json
        data = json.loads((REPO / "BENCH_churn.json").read_text())
        current = data["current"]
        assert set(current["policy"]) == {"first-fit", "least-loaded", "locality"}
        assert set(current["gc"]) == {"gc", "nogc"}

    def test_makefile_and_ci_wire_churn_smoke(self):
        assert "churn-smoke:" in (REPO / "Makefile").read_text()
        assert "churn-smoke" in (
            REPO / ".github" / "workflows" / "ci.yml").read_text()


class TestLineageDocs:
    def test_design_doc_covers_lineage_modules(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "repro.lineage" in text
        for mod in ("tree.py", "dedup.py", "restore.py", "compact.py"):
            assert (REPO / "src" / "repro" / "lineage" / mod).exists(), mod
            assert mod in text, f"DESIGN.md module map missing lineage {mod}"

    def test_experiments_doc_covers_lineage(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "restore" in text
        assert "BENCH_lineage.json" in text

    def test_readme_quickstart_covers_lineage(self):
        text = (REPO / "README.md").read_text()
        assert "python -m repro lineage" in text
        assert "make lineage-smoke" in text

    def test_tracked_lineage_numbers_exist(self):
        import json
        data = json.loads((REPO / "BENCH_lineage.json").read_text())
        rows = data["current"]["restore"]
        depths = data["depths"]
        for mode in ("off", "flatten"):
            for d in depths:
                assert f"{mode}-d{d}" in rows, f"missing {mode}-d{d}"
        assert f"merge-d{depths[-1]}" in rows
        assert data["current"]["determinism"]["identical"] is True

    def test_makefile_and_ci_wire_lineage_smoke(self):
        assert "lineage-smoke:" in (REPO / "Makefile").read_text()
        assert "lineage-smoke" in (
            REPO / ".github" / "workflows" / "ci.yml").read_text()


class TestTopoDocs:
    def test_design_doc_covers_topo(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "repro.topo" in text
        assert "fabric.py" in text
        assert (REPO / "src" / "repro" / "topo" / "fabric.py").exists()
        assert "oversubscri" in text  # the fabric's defining knob

    def test_experiments_doc_covers_topo(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "cross-rack" in text.lower()
        assert "BENCH_topo.json" in text

    def test_readme_quickstart_covers_topo(self):
        text = (REPO / "README.md").read_text()
        assert "python -m repro topo" in text
        assert "make topo-smoke" in text

    def test_tracked_topo_numbers_exist(self):
        import json
        data = json.loads((REPO / "BENCH_topo.json").read_text())
        current = data["current"]
        for n in data["counts"]:
            assert f"blind-n{n}" in current["sweep"]
            assert f"locality-n{n}" in current["sweep"]
        assert set(current["replica"]) == {"blind", "local"}
        assert current["replica"]["local"]["cross_rack_payload_bytes"] == 0.0
        assert current["identity"]["identical"] is True
        assert current["determinism"]["identical"] is True

    def test_makefile_and_ci_wire_topo_smoke(self):
        assert "topo-smoke:" in (REPO / "Makefile").read_text()
        assert "topo-smoke" in (
            REPO / ".github" / "workflows" / "ci.yml").read_text()


class TestRegistryDocs:
    """The README's registry table must match the runner's registries."""

    @staticmethod
    def _fresh_registry():
        # other tests register throwaway profiles into the live registry,
        # so snapshot it in a clean interpreter
        import json
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-c",
             "import json; from repro.runner import known_kinds, known_profiles; "
             "print(json.dumps([known_kinds(), known_profiles()]))"],
            capture_output=True, text=True, check=True, cwd=REPO,
        )
        kinds, profiles = json.loads(out.stdout)
        return kinds, profiles

    def test_readme_point_kind_table_matches_registry(self):
        kinds, _profiles = self._fresh_registry()
        text = (REPO / "README.md").read_text()
        table = text.split("| point kind |", 1)[1]
        rows = []
        for line in table.splitlines()[2:]:  # skip header remainder + rule
            m = re.match(r"\| `(\w+)` \|", line)
            if not m:
                break
            rows.append(m.group(1))
        assert sorted(rows) == sorted(kinds)

    def test_readme_profile_list_matches_registry(self):
        _kinds, profiles = self._fresh_registry()
        text = (REPO / "README.md").read_text()
        para = text.split("Profiles bundle", 1)[1].split("\n\n", 1)[0]
        listed = set(re.findall(r"`([\w-]+)`", para))
        assert listed == set(profiles)

    def test_help_epilog_enumerates_registries(self):
        from repro.cli import build_parser
        from repro.runner import known_kinds, known_profiles

        epilog = build_parser().epilog or ""
        for kind in known_kinds():
            assert kind in epilog
        for profile in known_profiles():
            assert profile in epilog


class TestBenchmarkCoverage:
    def test_one_bench_file_per_figure(self):
        bench_dir = REPO / "benchmarks"
        for fig in (4, 5, 6, 7, 8):
            hits = list(bench_dir.glob(f"bench_fig{fig}_*.py"))
            assert hits, f"no benchmark for figure {fig}"

    def test_examples_have_docstrings_and_main(self):
        for script in (REPO / "examples").glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(("#!", '"""')), script.name
            assert "__main__" in text, f"{script.name} is not runnable"
