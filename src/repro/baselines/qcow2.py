"""A functional qcow2-like copy-on-write image format (baseline, §3.1.4).

Implements the properties of QCOW2 that the paper's comparison exercises:

* a **cluster-addressed** mapping (default 64 KiB clusters, QEMU's default)
  from guest offsets to allocated clusters in the image file, equivalent to
  the L1/L2 two-level table scheme (a flat dict here — the two-level split
  only matters for on-disk layout, which we do not reproduce);
* a **backing file**: reads of unallocated clusters fall through to the
  backing image; the qcow2 file itself starts (nearly) empty;
* **copy-on-write**: the first write into an unallocated cluster first
  copies the cluster's backing content, then applies the write;
* **no read caching**: a read of an unallocated cluster goes to the backing
  file *every time* — unlike the paper's mirror, qcow2 only localizes
  clusters on write. This asymmetry is one driver of Fig. 4's gap.

The class is pure content + accounting. Every operation returns an
:class:`IoReport` describing the physical I/O it implies (backing reads,
local reads/writes, cluster allocations); the simulated backend in
:mod:`repro.vmsim.backends` turns reports into simulated time, and the
snapshot path copies ``file_bytes`` back to the distributed file system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..common.errors import ImageFormatError, OutOfRangeError
from ..common.payload import Payload, SparseFile
from ..common.units import KiB

#: QEMU's default cluster size.
DEFAULT_CLUSTER = 64 * KiB

#: Fixed-size structures of the format (header + table overhead), charged to
#: the image file's physical footprint.
HEADER_BYTES = 64 * KiB


@dataclass
class IoReport:
    """Physical I/O implied by one logical operation."""

    #: (offset, nbytes) ranges read from the backing image
    backing_reads: List[Tuple[int, int]] = field(default_factory=list)
    #: bytes read from the qcow2 file itself
    local_read_bytes: int = 0
    #: bytes written to the qcow2 file
    local_write_bytes: int = 0
    #: clusters newly allocated (metadata updates)
    clusters_allocated: int = 0


class Qcow2Image:
    """An open qcow2-like image with an optional backing read callback.

    ``backing_read(offset, nbytes) -> Payload`` supplies backing content
    (pure; the simulated backend layers timing on the reported ranges).
    Without a backing file, unallocated clusters read as zeros.
    """

    def __init__(
        self,
        size: int,
        backing_read: Callable[[int, int], Payload] | None = None,
        cluster_size: int = DEFAULT_CLUSTER,
    ):
        if size <= 0 or cluster_size <= 0:
            raise ImageFormatError("size and cluster_size must be positive")
        self.size = size
        self.cluster_size = cluster_size
        self.backing_read = backing_read
        self.n_clusters = -(-size // cluster_size)
        #: guest cluster index -> cluster content (the allocated clusters)
        self._clusters: Dict[int, SparseFile] = {}

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def _cluster_bounds(self, idx: int) -> Tuple[int, int]:
        lo = idx * self.cluster_size
        return lo, min(lo + self.cluster_size, self.size)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise OutOfRangeError(
                f"[{offset},{offset + nbytes}) outside image of size {self.size}"
            )

    def is_allocated(self, idx: int) -> bool:
        return idx in self._clusters

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #
    def read(self, offset: int, nbytes: int) -> Tuple[Payload, IoReport]:
        """Read guest range; unallocated clusters fall through to backing."""
        self._check(offset, nbytes)
        report = IoReport()
        parts: List[Payload] = []
        cursor = offset
        end = offset + nbytes
        while cursor < end:
            idx = cursor // self.cluster_size
            c_lo, c_hi = self._cluster_bounds(idx)
            w_hi = min(end, c_hi)
            ln = w_hi - cursor
            cluster = self._clusters.get(idx)
            if cluster is not None:
                parts.append(cluster.read(cursor - c_lo, ln))
                report.local_read_bytes += ln
            elif self.backing_read is not None:
                parts.append(self.backing_read(cursor, ln))
                report.backing_reads.append((cursor, ln))
            else:
                parts.append(Payload.zeros(ln))
            cursor = w_hi
        return Payload.concat(parts), report

    def write(self, offset: int, payload: Payload) -> IoReport:
        """Write guest range; unallocated clusters are CoW-allocated first."""
        self._check(offset, payload.size)
        report = IoReport()
        cursor = offset
        end = offset + payload.size
        while cursor < end:
            idx = cursor // self.cluster_size
            c_lo, c_hi = self._cluster_bounds(idx)
            w_hi = min(end, c_hi)
            ln = w_hi - cursor
            cluster = self._clusters.get(idx)
            if cluster is None:
                cluster = SparseFile(c_hi - c_lo)
                # Copy-on-write: materialize backing content unless the write
                # covers the whole cluster.
                if not (cursor == c_lo and w_hi == c_hi):
                    if self.backing_read is not None:
                        base = self.backing_read(c_lo, c_hi - c_lo)
                        report.backing_reads.append((c_lo, c_hi - c_lo))
                        cluster.write(0, base)
                    report.local_write_bytes += c_hi - c_lo - ln
                self._clusters[idx] = cluster
                report.clusters_allocated += 1
            cluster.write(cursor - c_lo, payload.slice(cursor - offset, w_hi - offset))
            report.local_write_bytes += ln
            cursor = w_hi
        return report

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def allocated_clusters(self) -> int:
        return len(self._clusters)

    @property
    def file_bytes(self) -> int:
        """Physical size of the qcow2 file (what a snapshot copy must move)."""
        return HEADER_BYTES + sum(
            c.size for c in self._clusters.values()
        )

    def flatten(self) -> Payload:
        """The full guest-visible content (for verification against a model)."""
        payload, _ = self.read(0, self.size)
        return payload

    # ------------------------------------------------------------------ #
    # file (de)serialization — what a snapshot copy physically moves
    # ------------------------------------------------------------------ #
    def serialize(self) -> Tuple[Payload, List[int]]:
        """Produce the physical qcow2 file: header + allocated clusters.

        Returns ``(file_payload, cluster_index)`` where ``cluster_index[k]``
        is the guest cluster stored at file position ``HEADER_BYTES + k *
        cluster_size`` (the L1/L2 content, serialized as a plain list).
        """
        index = sorted(self._clusters)
        parts: List[Payload] = [Payload.zeros(HEADER_BYTES)]
        for idx in index:
            parts.append(self._clusters[idx].snapshot_payload())
        return Payload.concat(parts), index

    @classmethod
    def deserialize(
        cls,
        file_payload: Payload,
        cluster_index: List[int],
        size: int,
        backing_read: Callable[[int, int], Payload] | None = None,
        cluster_size: int = DEFAULT_CLUSTER,
    ) -> "Qcow2Image":
        """Reopen a serialized qcow2 file (possibly on another machine)."""
        img = cls(size, backing_read, cluster_size=cluster_size)
        cursor = HEADER_BYTES
        for idx in cluster_index:
            c_lo, c_hi = img._cluster_bounds(idx)
            ln = c_hi - c_lo
            cluster = SparseFile(ln)
            cluster.write(0, file_payload.slice(cursor, cursor + ln))
            img._clusters[idx] = cluster
            cursor += ln
        return img
